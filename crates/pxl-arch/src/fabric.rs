//! The shared execution fabric: everything about the accelerator that does
//! *not* depend on how ready tasks are distributed.
//!
//! [`FabricEngine`] is a cycle-level, event-driven simulator of the paper's
//! Fig. 3(b) tile microarchitecture — the memory backend, P-Store joins and
//! greedy routing, the fault state machine and its recovery invariants, the
//! quiescence watchdog, metric-handle registration, trace emission, and the
//! PE-side [`TaskContext`] — parameterized by a
//! [`SchedulingPolicy`](crate::policy::SchedulingPolicy) that owns only
//! task placement and acquisition:
//!
//! * [`FlexEngine`] = `FabricEngine<FlexPolicy>`: per-PE LIFO deques with
//!   LFSR-victim work stealing (the published FlexArch).
//! * [`CentralEngine`] = `FabricEngine<CentralPolicy>`: one global ready
//!   queue with per-access contention — the centralized strawman that
//!   distributed hardware stealing replaces.
//!
//! The fabric drives the policy at four points: it seeds the root task,
//! wakes idle PEs to pop local work, routes acquire requests to the
//! policy's chosen victim, and lets the victim's policy serve the request
//! (possibly stretching service time to model queue-port contention).
//! Everything else — dispatch costs, crossbar hops, fault injection and
//! recovery, the watchdog — is identical across policies, which is what
//! makes the Flex-vs-central ablation an apples-to-apples comparison.
//!
//! Simulation is event-driven over the global picosecond timebase. A
//! dispatched task executes *functionally* against shared memory while its
//! port operations advance a local timestamp through the memory hierarchy
//! and the TMU cost model; spawned tasks enter the policy's storage with
//! their spawn-time visibility, so a thief whose request arrives earlier
//! cannot see them.

use pxl_mem::zedboard::AcpParams;
use pxl_mem::{AccessKind, Memory, MemorySystem, PortId, ZedboardMemory};
use pxl_model::serial::HOST_SLOTS;
use pxl_model::{
    Continuation, ExecProfile, PendingTask, Task, TaskContext, TaskTypeId, Worker, TASK_WORDS,
};
use pxl_sim::json::JsonValue;
use pxl_sim::snapshot::{self, malformed, Snapshot, SnapshotError};
use pxl_sim::{
    CounterId, EventQueue, EventSlab, FaultKind, FaultPlan, FaultScheduler, HistogramId, Metrics,
    NetClass, SendVerdict, TelemetrySampler, Time, Timeline, TraceEvent, Tracer,
};

use crate::config::{AccelConfig, LinkTopology, MemBackendKind};
use crate::policy::{CentralPolicy, FlexPolicy, HierPolicy, SchedulingPolicy};
use crate::pstore::{PStore, PStoreError};

/// How many times a dropped network message is retransmitted before the
/// sender gives up and the loss becomes [`TraceEvent::FaultUnrecovered`]
/// (the quiescence watchdog then flags the resulting stall).
const MAX_SEND_RETRIES: u8 = 8;

/// Errors an accelerator simulation can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccelError {
    /// A PE's task queue overflowed; the configuration violates the space
    /// bound for this workload.
    QueueFull {
        /// The PE whose queue overflowed.
        pe: usize,
    },
    /// Every tile's P-Store was full when a worker created a successor.
    PStoreFull {
        /// The tile that first rejected the allocation.
        tile: usize,
    },
    /// Execution drained but pending tasks never became ready.
    LeakedPending {
        /// Pending tasks stranded across all P-Stores.
        count: usize,
    },
    /// The root continuation's host register was never written.
    NoResult {
        /// Expected host result slot.
        slot: u8,
    },
    /// Simulated time exceeded the configured safety limit. This is the hard
    /// backstop behind the quiescence watchdog ([`AccelError::Stalled`]),
    /// which normally fires much earlier and with better diagnostics.
    TimedOut,
    /// The quiescence watchdog saw no forward progress for longer than
    /// [`AccelConfig::watchdog_quiescence_cycles`] while work was still
    /// outstanding: the computation is deadlocked or livelocked.
    Stalled {
        /// The unit that last made forward progress (completed a task or
        /// delivered an argument), if any unit ever did.
        last_unit: Option<usize>,
        /// How long (simulated microseconds) the fabric had been quiescent
        /// when the watchdog fired.
        idle_us: u64,
        /// A unit still holding undispatchable work, if one exists
        /// (`num_pes` denotes the host interface block).
        blocked_unit: Option<usize>,
    },
    /// A P-Store protocol violation: filling a freed entry, addressing a
    /// nonexistent entry or slot, or a malformed allocation — either a model
    /// bug or the effect of injected state corruption.
    PStoreCorrupt {
        /// The tile whose P-Store rejected the operation.
        tile: usize,
        /// The underlying P-Store error.
        source: PStoreError,
    },
    /// The configuration failed [`AccelConfig::validate`] or names the wrong
    /// architecture for this engine.
    InvalidConfig(String),
    /// The configuration is invalid or the operation is unsupported by the
    /// selected architecture (e.g. spawning on LiteArch).
    Unsupported(String),
}

impl std::fmt::Display for AccelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccelError::QueueFull { pe } => write!(f, "task queue of PE {pe} overflowed"),
            AccelError::PStoreFull { tile } => {
                write!(f, "all P-Stores full (first rejected by tile {tile})")
            }
            AccelError::LeakedPending { count } => {
                write!(f, "computation leaked {count} pending task(s)")
            }
            AccelError::NoResult { slot } => write!(f, "no result in host slot {slot}"),
            AccelError::TimedOut => write!(f, "simulation exceeded its time limit"),
            AccelError::Stalled {
                last_unit,
                idle_us,
                blocked_unit,
            } => {
                write!(f, "watchdog: no forward progress for {idle_us} us")?;
                match last_unit {
                    Some(u) => write!(f, "; unit {u} made the last progress")?,
                    None => write!(f, "; no unit ever made progress")?,
                }
                if let Some(b) = blocked_unit {
                    write!(f, "; unit {b} still holds undispatched work")?;
                }
                Ok(())
            }
            AccelError::PStoreCorrupt { tile, source } => {
                write!(f, "P-Store protocol violation on tile {tile}: {source}")
            }
            AccelError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            AccelError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for AccelError {}

/// Outcome of a completed accelerator run.
#[derive(Debug, Clone)]
pub struct AccelResult {
    /// Value delivered to the root continuation's host slot.
    pub result: u64,
    /// Simulated time from launch to the last useful event.
    pub elapsed: Time,
    /// Aggregated typed metrics (engine + memory system).
    pub metrics: Metrics,
    /// Structured event trace (empty unless tracing was enabled in the
    /// configuration).
    pub trace: Tracer,
    /// In-run telemetry timeline (empty unless `telemetry_every_cycles`
    /// was set in the configuration).
    pub timeline: Timeline,
}

/// The memory path behind the PEs (coherent SoC caches or Zedboard stream
/// buffers).
#[derive(Debug)]
pub(crate) enum MemBackend {
    Coherent(Box<MemorySystem>),
    Zedboard(Box<ZedboardMemory>),
}

impl MemBackend {
    pub(crate) fn for_config(cfg: &AccelConfig) -> Self {
        let mut backend = match cfg.mem_backend {
            MemBackendKind::Coherent => MemBackend::Coherent(Box::new(MemorySystem::new(
                vec![cfg.memory.accel_l1.clone(); cfg.tiles],
                &cfg.memory,
            ))),
            MemBackendKind::Zedboard => MemBackend::Zedboard(Box::new(ZedboardMemory::new(
                cfg.num_pes(),
                AcpParams::default(),
            ))),
        };
        if cfg.trace_capacity > 0 {
            backend.enable_trace(cfg.trace_capacity);
        }
        backend
    }

    pub(crate) fn enable_trace(&mut self, capacity: usize) {
        match self {
            MemBackend::Coherent(m) => m.enable_trace(capacity),
            MemBackend::Zedboard(m) => m.enable_trace(capacity),
        }
    }

    pub(crate) fn take_trace(&mut self) -> Tracer {
        match self {
            MemBackend::Coherent(m) => m.take_trace(),
            MemBackend::Zedboard(m) => m.take_trace(),
        }
    }

    /// Memory port used by PE `pe`: the tile L1 for the coherent system, a
    /// per-PE stream-buffer group on the Zedboard.
    pub(crate) fn port_of(&self, cfg: &AccelConfig, pe: usize) -> usize {
        match self {
            MemBackend::Coherent(_) => cfg.tile_of_pe(pe),
            MemBackend::Zedboard(_) => pe,
        }
    }

    pub(crate) fn access(&mut self, port: usize, addr: u64, kind: AccessKind, now: Time) -> Time {
        match self {
            MemBackend::Coherent(m) => m.access(PortId(port), addr, kind, now),
            MemBackend::Zedboard(m) => m.access(port, addr, kind, now),
        }
    }

    pub(crate) fn access_bytes(
        &mut self,
        port: usize,
        addr: u64,
        bytes: u64,
        kind: AccessKind,
        now: Time,
    ) -> Time {
        match self {
            MemBackend::Coherent(m) => m.access_bytes(PortId(port), addr, bytes, kind, now),
            MemBackend::Zedboard(m) => m.access_bytes(port, addr, bytes, kind, now),
        }
    }

    pub(crate) fn take_stats(&mut self) -> Metrics {
        match self {
            MemBackend::Coherent(m) => m.take_stats(),
            MemBackend::Zedboard(m) => m.take_stats(),
        }
    }

    /// Serializes the backend's mutable state for engine snapshots, tagged
    /// with the backend kind so a restore into the wrong memory path fails
    /// loudly.
    pub(crate) fn state_to_json_value(&self) -> JsonValue {
        let (kind, state) = match self {
            MemBackend::Coherent(m) => ("coherent", m.state_to_json_value()),
            MemBackend::Zedboard(m) => ("zedboard", m.state_to_json_value()),
        };
        JsonValue::Object(vec![
            ("kind".to_owned(), JsonValue::Str(kind.to_owned())),
            ("state".to_owned(), state),
        ])
    }

    /// Restores state captured by [`MemBackend::state_to_json_value`].
    pub(crate) fn restore_state(&mut self, value: &JsonValue) -> Result<(), String> {
        let kind = value
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or("memory backend state: missing kind")?;
        let state = value
            .get("state")
            .ok_or("memory backend state: missing state")?;
        match (self, kind) {
            (MemBackend::Coherent(m), "coherent") => m.restore_state(state),
            (MemBackend::Zedboard(m), "zedboard") => m.restore_state(state),
            (_, k) => Err(format!("memory backend mismatch: snapshot holds {k:?}")),
        }
    }
}

/// A scheduled fabric event. Task payloads live in the engine's task slab
/// ([`FabricEngine::task_slab`]); the variants carry only `u32` slots, so
/// every event is a few words and heap churn in the queue never copies a
/// task body. A slot is claimed exactly once — at the push that created it
/// — and released exactly once, by `handle()` at pop.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// PE finished its previous activity; look for work.
    PeWake { pe: usize },
    /// A steal request reaches the victim's TMU (victim == num_pes means the
    /// host interface block).
    StealArrive { thief: usize, victim: usize },
    /// The steal response reaches the thief; the granted task (if any)
    /// lives in the task slab.
    StealReply { thief: usize, task: Option<u32> },
    /// An argument message reaches its destination P-Store or host register.
    /// `dup_of` marks an injected duplicate copy (the spec that duplicated
    /// it); the receiver discards it, modelling sequence-number dedup.
    ArgArrive {
        k: Continuation,
        value: u64,
        from_pe: usize,
        from_task: u64,
        dup_of: Option<usize>,
    },
    /// A ready task (greedy-routed) reaches a PE. `dup_of` as on
    /// [`Event::ArgArrive`].
    TaskRun {
        pe: usize,
        task: u32,
        dup_of: Option<usize>,
    },
    /// A planned one-shot fault (PE death, PE stall, P-Store corruption)
    /// fires.
    FaultFire { spec: usize },
    /// A dropped argument message is retransmitted after backoff.
    ArgResend {
        k: Continuation,
        value: u64,
        from_pe: usize,
        from_task: u64,
        attempt: u8,
        spec: usize,
    },
    /// A dropped ready-task message is retransmitted after backoff.
    TaskResend {
        pe: usize,
        task: u32,
        attempt: u8,
        spec: usize,
    },
}

impl Event {
    /// Flat word encoding for snapshots: a tag word, then the variant's
    /// fields. Tasks are resolved through `slab` and flatten inline via
    /// [`Task::to_words`], so the wire format is identical to the old
    /// by-value event layout; `Option` indices encode as the value plus
    /// one, with zero meaning `None`.
    fn to_words(self, slab: &EventSlab<Task>) -> Vec<u64> {
        let opt = |o: Option<usize>| o.map_or(0, |s| s as u64 + 1);
        match self {
            Event::PeWake { pe } => vec![0, pe as u64],
            Event::StealArrive { thief, victim } => vec![1, thief as u64, victim as u64],
            Event::StealReply { thief, task } => {
                let mut w = vec![2, thief as u64];
                if let Some(slot) = task {
                    w.extend_from_slice(&slab.get(slot).to_words());
                }
                w
            }
            Event::ArgArrive {
                k,
                value,
                from_pe,
                from_task,
                dup_of,
            } => vec![3, k.encode(), value, from_pe as u64, from_task, opt(dup_of)],
            Event::TaskRun { pe, task, dup_of } => {
                let mut w = vec![4, pe as u64, opt(dup_of)];
                w.extend_from_slice(&slab.get(task).to_words());
                w
            }
            Event::FaultFire { spec } => vec![5, spec as u64],
            Event::ArgResend {
                k,
                value,
                from_pe,
                from_task,
                attempt,
                spec,
            } => vec![
                6,
                k.encode(),
                value,
                from_pe as u64,
                from_task,
                attempt as u64,
                spec as u64,
            ],
            Event::TaskResend {
                pe,
                task,
                attempt,
                spec,
            } => {
                let mut w = vec![7, pe as u64, attempt as u64, spec as u64];
                w.extend_from_slice(&slab.get(task).to_words());
                w
            }
        }
    }

    /// Inverse of [`Event::to_words`]: inline task words are re-homed into
    /// `slab` and the rebuilt event carries the fresh slot.
    fn from_words(words: &[u64], slab: &mut EventSlab<Task>) -> Result<Event, String> {
        let tag = *words.first().ok_or("event encoding is empty")?;
        let expect = |n: usize| -> Result<(), String> {
            if words.len() == n {
                Ok(())
            } else {
                Err(format!(
                    "event tag {tag} holds {} words, expected {n}",
                    words.len()
                ))
            }
        };
        let opt = |w: u64| if w == 0 { None } else { Some(w as usize - 1) };
        match tag {
            0 => {
                expect(2)?;
                Ok(Event::PeWake {
                    pe: words[1] as usize,
                })
            }
            1 => {
                expect(3)?;
                Ok(Event::StealArrive {
                    thief: words[1] as usize,
                    victim: words[2] as usize,
                })
            }
            2 => {
                let task = match words.len() {
                    2 => None,
                    n if n == 2 + TASK_WORDS => Some(slab.insert(Task::from_words(&words[2..])?)),
                    n => return Err(format!("event tag 2 holds {n} words")),
                };
                Ok(Event::StealReply {
                    thief: words[1] as usize,
                    task,
                })
            }
            3 => {
                expect(6)?;
                Ok(Event::ArgArrive {
                    k: Continuation::decode(words[1]),
                    value: words[2],
                    from_pe: words[3] as usize,
                    from_task: words[4],
                    dup_of: opt(words[5]),
                })
            }
            4 => {
                expect(3 + TASK_WORDS)?;
                Ok(Event::TaskRun {
                    pe: words[1] as usize,
                    dup_of: opt(words[2]),
                    task: slab.insert(Task::from_words(&words[3..])?),
                })
            }
            5 => {
                expect(2)?;
                Ok(Event::FaultFire {
                    spec: words[1] as usize,
                })
            }
            6 => {
                expect(7)?;
                Ok(Event::ArgResend {
                    k: Continuation::decode(words[1]),
                    value: words[2],
                    from_pe: words[3] as usize,
                    from_task: words[4],
                    attempt: words[5] as u8,
                    spec: words[6] as usize,
                })
            }
            7 => {
                expect(4 + TASK_WORDS)?;
                Ok(Event::TaskResend {
                    pe: words[1] as usize,
                    attempt: words[2] as u8,
                    spec: words[3] as usize,
                    task: slab.insert(Task::from_words(&words[4..])?),
                })
            }
            t => Err(format!("unknown event tag {t}")),
        }
    }
}

/// Engine-side fault-injection state, present only when the configuration
/// carries a [`FaultPlan`].
#[derive(Debug)]
struct FaultState {
    sched: FaultScheduler,
    /// Fail-stop flags: a dead PE never begins another task; faults are
    /// injected at task-dispatch granularity so in-flight tasks commit.
    dead: Vec<bool>,
    /// Per-PE death spec still awaiting rescue (the victim's deque was
    /// non-empty at death; recovery completes when it drains via stealing).
    rescue_pending: Vec<Option<usize>>,
    /// Per-tile corruption specs awaiting ECC repair: `(entry, spec)` pairs
    /// cleared when the entry's next fill scrubs the taint.
    corrupt_pending: Vec<Vec<(u32, usize)>>,
}

impl FaultState {
    fn new(plan: &FaultPlan, num_pes: usize, tiles: usize) -> Self {
        FaultState {
            sched: FaultScheduler::new(plan),
            dead: vec![false; num_pes],
            rescue_pending: vec![None; num_pes],
            corrupt_pending: vec![Vec::new(); tiles],
        }
    }
}

/// The quiescence watchdog: declares a run stalled when no unit makes
/// forward progress (task completion or argument delivery) for longer than
/// the configured window while work is still outstanding.
///
/// Shared by every engine — the event-driven fabric, LiteArch's round
/// executor, and the software baseline in `pxl-cpu` — so the stall
/// diagnosis and its `watchdog.stalls` counter / `watchdog.stall` trace
/// event cannot drift between them.
#[derive(Debug)]
pub struct Watchdog {
    window: Time,
    last_progress: Time,
    last_unit: Option<usize>,
}

impl Watchdog {
    /// A watchdog that fires after `window` of quiescence.
    pub fn new(window: Time) -> Self {
        Watchdog {
            window,
            last_progress: Time::ZERO,
            last_unit: None,
        }
    }

    /// Records forward progress by `unit` at `at`.
    pub fn progress(&mut self, at: Time, unit: usize) {
        if at >= self.last_progress {
            self.last_progress = at;
            self.last_unit = Some(unit);
        }
    }

    /// Whether the window has elapsed without progress as of `now`.
    pub fn expired(&self, now: Time) -> bool {
        now.saturating_sub(self.last_progress) > self.window
    }

    /// When any unit last made forward progress.
    pub fn last_progress(&self) -> Time {
        self.last_progress
    }

    /// The unit that last made forward progress, if any ever did.
    pub fn last_unit(&self) -> Option<usize> {
        self.last_unit
    }

    /// Overwrites the progress state from a snapshot. The window stays as
    /// configured.
    pub fn load(&mut self, last_progress: Time, last_unit: Option<usize>) {
        self.last_progress = last_progress;
        self.last_unit = last_unit;
    }

    /// Builds the [`AccelError::Stalled`] diagnosis, emitting the
    /// `watchdog.stall` trace event and counter. `blocked_unit` is a unit
    /// still holding undispatchable work, if the caller found one
    /// (`num_pes` denotes the host interface block).
    pub fn stall(
        &self,
        metrics: &mut Metrics,
        trace: &mut Tracer,
        now: Time,
        blocked_unit: Option<usize>,
    ) -> AccelError {
        let idle_ps = now.saturating_sub(self.last_progress).as_ps();
        metrics.incr("watchdog.stalls");
        trace.emit(
            now,
            TraceEvent::WatchdogStall {
                unit: self.last_unit.map_or(u32::MAX, |u| u as u32),
                idle_ps,
            },
        );
        AccelError::Stalled {
            last_unit: self.last_unit,
            idle_us: idle_ps / 1_000_000,
            blocked_unit,
        }
    }
}

/// Records an injected fault: the `fault.injected` counter plus a
/// [`TraceEvent::FaultInjected`] at `at`. One home for the bookkeeping all
/// engines share, so counters and traces stay comparable across them.
pub fn record_injected(
    metrics: &mut Metrics,
    trace: &mut Tracer,
    at: Time,
    spec: usize,
    unit: usize,
) {
    metrics.incr("fault.injected");
    trace.emit(
        at,
        TraceEvent::FaultInjected {
            spec: spec as u32,
            unit: unit as u32,
        },
    );
}

/// Records a recovered fault: the `fault.recovered` counter plus a
/// [`TraceEvent::FaultRecovered`] at `at`.
pub fn record_recovered(
    metrics: &mut Metrics,
    trace: &mut Tracer,
    at: Time,
    spec: usize,
    unit: usize,
) {
    metrics.incr("fault.recovered");
    trace.emit(
        at,
        TraceEvent::FaultRecovered {
            spec: spec as u32,
            unit: unit as u32,
        },
    );
}

/// Registers the canonical fault/watchdog counter families at zero so every
/// engine — fault plan armed or not — reports the same metric namespace
/// (`fault.injected`, `fault.recovered`, `fault.skipped`,
/// `fault.unrecovered`, `watchdog.stalls`).
pub fn register_fault_metrics(metrics: &mut Metrics) {
    metrics.register_counter("fault.injected");
    metrics.register_counter("fault.recovered");
    metrics.register_counter("fault.skipped");
    metrics.register_counter("fault.unrecovered");
    metrics.register_counter("watchdog.stalls");
}

/// Stamps the timed memory-path methods of a [`TaskContext`] impl —
/// `compute`, `load`, `store`, `amo`, `dma_read` and `dma_write` — so every
/// engine context shares one implementation of the op-cost and cache-timing
/// arithmetic. The expanding type must expose `cfg`, `profile`, `backend`,
/// `port`, `now` and `ops` fields with their usual fabric meanings.
macro_rules! timed_memory_path {
    () => {
        fn compute(&mut self, ops: u64) {
            self.ops += ops;
            let cycles = self.profile.accel_cycles(ops);
            self.now += self.cfg.clock.cycles_to_time(cycles);
        }

        fn load(&mut self, addr: u64, _bytes: u32) {
            self.now = self
                .backend
                .access(self.port, addr, pxl_mem::AccessKind::Read, self.now);
        }

        fn store(&mut self, addr: u64, _bytes: u32) {
            self.now = self
                .backend
                .access(self.port, addr, pxl_mem::AccessKind::Write, self.now);
        }

        fn amo(&mut self, addr: u64) {
            self.now = self
                .backend
                .access(self.port, addr, pxl_mem::AccessKind::Amo, self.now);
        }

        fn dma_read(&mut self, addr: u64, bytes: u64) {
            self.now = self.backend.access_bytes(
                self.port,
                addr,
                bytes,
                pxl_mem::AccessKind::Read,
                self.now,
            );
        }

        fn dma_write(&mut self, addr: u64, bytes: u64) {
            self.now = self.backend.access_bytes(
                self.port,
                addr,
                bytes,
                pxl_mem::AccessKind::Write,
                self.now,
            );
        }
    };
}
pub(crate) use timed_memory_path;

/// The FlexArch accelerator simulator: the shared fabric driven by
/// [`FlexPolicy`]'s distributed work stealing.
pub type FlexEngine = FabricEngine<FlexPolicy>;

/// The centralized shared-queue accelerator simulator: the shared fabric
/// driven by [`CentralPolicy`]'s single global ready queue. Exists to
/// quantify, against [`FlexEngine`] on identical cost models, what
/// distributed hardware work stealing buys.
pub type CentralEngine = FabricEngine<CentralPolicy>;

/// The multi-chip cluster simulator: the shared fabric driven by
/// [`HierPolicy`]'s hierarchical (intra-chip-first, spill-on-starvation)
/// work stealing over a [`crate::ClusterConfig`]'s partitioned tiles and
/// modeled inter-chip link tier. On a 1-chip cluster it reproduces
/// [`FlexEngine`] byte-for-byte.
pub type HierEngine = FabricEngine<HierPolicy>;

/// Inter-chip link traffic classes, stamped into
/// [`TraceEvent::LinkXfer`] records.
const LINK_STEAL_REQ: u8 = 0;
const LINK_STEAL_REPLY: u8 = 1;
const LINK_ARG: u8 = 2;
const LINK_TASK: u8 = 3;

/// Typed handles for the inter-chip link counters; registered only on
/// multi-chip clusters so single-chip metric dumps stay byte-identical.
#[derive(Debug, Clone, Copy)]
struct LinkIds {
    msgs: CounterId,
    steal_msgs: CounterId,
    arg_msgs: CounterId,
    task_msgs: CounterId,
    steal_hits: CounterId,
    stall_ps: CounterId,
}

/// The modeled inter-chip link tier of a multi-chip cluster.
///
/// Each directed chip pair owns a bounded-bandwidth link: a message
/// departing at `t` waits until the pair's `next_free`, occupies the link
/// for `occupancy`, and arrives after `latency` per topology hop. The
/// `next_free` horizon is the link's only mutable state and is carried
/// through snapshots so a restored run replays in-flight serialization
/// byte-identically.
#[derive(Debug)]
struct LinkState {
    chips: usize,
    /// One-way latency per topology hop.
    latency: Time,
    /// Serialization window one message holds a directed link for.
    occupancy: Time,
    topology: LinkTopology,
    /// When each directed pair's link frees up (row-major `src * chips +
    /// dst`).
    next_free: Vec<Time>,
    ids: LinkIds,
}

impl LinkState {
    /// Builds the link tier for a multi-chip cluster, registering its
    /// `link.*` counters; `None` for single-chip configurations.
    fn for_config(cfg: &AccelConfig, metrics: &mut Metrics) -> Option<LinkState> {
        let cluster = cfg.cluster?;
        if cluster.chips <= 1 {
            return None;
        }
        Some(LinkState {
            chips: cluster.chips,
            latency: cfg.clock.cycles_to_time(cluster.link_latency_cycles),
            occupancy: cfg.clock.cycles_to_time(cluster.link_occupancy_cycles),
            topology: cluster.topology,
            next_free: vec![Time::ZERO; cluster.chips * cluster.chips],
            ids: LinkIds {
                msgs: metrics.register_counter("link.msgs"),
                steal_msgs: metrics.register_counter("link.steal_msgs"),
                arg_msgs: metrics.register_counter("link.arg_msgs"),
                task_msgs: metrics.register_counter("link.task_msgs"),
                steal_hits: metrics.register_counter("link.steal_hits"),
                stall_ps: metrics.register_counter("link.stall_ps"),
            },
        })
    }
}

/// The event-driven accelerator simulator, generic over a
/// [`SchedulingPolicy`] that owns task placement and acquisition.
///
/// Typical use: build with [`FabricEngine::new`], lay out inputs through
/// [`FabricEngine::mem_mut`], then [`FabricEngine::run`] a root task.
///
/// # Examples
///
/// ```
/// use pxl_arch::{AccelConfig, FlexEngine};
/// use pxl_model::{Continuation, ExecProfile, Task, TaskContext, TaskTypeId, Worker};
///
/// const FIB: TaskTypeId = TaskTypeId(0);
/// const SUM: TaskTypeId = TaskTypeId(1);
/// struct Fib;
/// impl Worker for Fib {
///     fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
///         let k = task.k;
///         if task.ty == FIB {
///             let n = task.args[0];
///             ctx.compute(2);
///             if n < 2 {
///                 ctx.send_arg(k, n);
///             } else {
///                 let kk = ctx.make_successor(SUM, k, 2);
///                 ctx.spawn(Task::new(FIB, kk.with_slot(1), &[n - 2]));
///                 ctx.spawn(Task::new(FIB, kk.with_slot(0), &[n - 1]));
///             }
///         } else {
///             ctx.send_arg(k, task.args[0] + task.args[1]);
///         }
///     }
/// }
///
/// let mut engine = FlexEngine::new(AccelConfig::flex(2, 4), ExecProfile::scalar());
/// let root = Task::new(FIB, Continuation::host(0), &[12]);
/// let out = engine.run(&mut Fib, root).unwrap();
/// assert_eq!(out.result, 144);
/// ```
#[derive(Debug)]
pub struct FabricEngine<P: SchedulingPolicy> {
    cfg: AccelConfig,
    profile: ExecProfile,
    mem: Memory,
    backend: MemBackend,
    /// Task placement and acquisition — the only part that differs between
    /// engine families. `pub(crate)` so the `Engine` facade can label runs
    /// by `policy.kind()`.
    pub(crate) policy: P,
    pstores: Vec<PStore>,
    /// Hot per-unit scheduling state (struct-of-arrays).
    units: UnitState,
    hetero_rr: usize,
    host: [Option<u64>; HOST_SLOTS],
    events: EventQueue<Event>,
    /// Payload store for task-carrying events; see [`Event`].
    task_slab: EventSlab<Task>,
    /// Reusable spill buffers for [`FabricCtx`] outputs, recycled across
    /// task executions so the dispatch loop stops allocating per task.
    scratch_args: Vec<(Time, Continuation, u64)>,
    scratch_spawns: Vec<(Time, Task)>,
    outstanding: u64,
    inflight_args: u64,
    last_useful: Time,
    faults: Option<FaultState>,
    /// The inter-chip link tier; `None` on single-chip configurations
    /// (including 1-chip clusters), keeping those byte-identical to stock.
    link: Option<LinkState>,
    watchdog: Watchdog,
    metrics: Metrics,
    ids: FabricIds,
    trace: Tracer,
    /// In-run telemetry sampler; `None` when `telemetry_every_cycles` is
    /// zero, keeping the hot loop's cost to one `Option` check per event.
    telemetry: Option<TelemetrySampler>,
    /// Run-unique task instance ids, stamped at spawn/successor creation so
    /// trace consumers can reconstruct the task DAG. Id 0 is reserved for
    /// "no task" (e.g. host-originated messages); the root task gets id 1.
    next_task_id: u64,
    error: Option<AccelError>,
    /// Host slot the root continuation targets, latched at launch so a
    /// paused/restored engine can still finish the run.
    result_slot: Option<u8>,
    /// Whether the root task has been seeded. A restored engine is already
    /// launched; [`FabricEngine::run`] skips re-seeding.
    launched: bool,
}

/// Outcome of one [`FabricEngine::run_until`] leg.
#[derive(Debug)]
pub enum RunStatus {
    /// The computation drained; the result and aggregated statistics are
    /// final. The engine's metrics and trace have been moved into the
    /// result.
    Finished(AccelResult),
    /// Every event at or before the pause boundary has been processed and
    /// work is still outstanding. The engine can be snapshotted here and
    /// resumed with another `run_until` leg.
    Paused {
        /// The pause boundary that was reached.
        at: Time,
    },
}

/// Hot per-unit scheduling state as parallel dense arrays — the
/// struct-of-arrays split of what used to be scattered per-PE fields. The
/// dispatch loop reads `busy_until` on every wake and `steal_fails` on
/// every steal outcome; cold per-unit state (death flags, pending rescues)
/// stays in [`FaultState`] so these arrays hold only what every event
/// touches.
#[derive(Debug)]
struct UnitState {
    /// Completion horizon per PE: wakes before this instant are ignored.
    busy_until: Vec<Time>,
    /// Consecutive failed steals per PE, bounding the backoff shift.
    steal_fails: Vec<u32>,
}

impl UnitState {
    fn new(num_pes: usize) -> Self {
        UnitState {
            busy_until: vec![Time::ZERO; num_pes],
            steal_fails: vec![0; num_pes],
        }
    }
}

/// Typed handles into the metrics registry for the engine's hot counters;
/// registered once at construction so per-event updates skip string lookups.
#[derive(Debug)]
struct FabricIds {
    steal_attempts: CounterId,
    steal_hits: CounterId,
    spawns: CounterId,
    successors: CounterId,
    args: CounterId,
    ops: CounterId,
    tasks: CounterId,
    task_ps: HistogramId,
    trace_dropped: CounterId,
    queue_peak_sum: CounterId,
    pstore_peak_sum: CounterId,
    pe_tasks: Vec<CounterId>,
    pe_busy_ps: Vec<CounterId>,
}

impl FabricIds {
    fn register(metrics: &mut Metrics, num_pes: usize) -> Self {
        FabricIds {
            steal_attempts: metrics.register_counter("accel.steal_attempts"),
            steal_hits: metrics.register_counter("accel.steal_hits"),
            spawns: metrics.register_counter("accel.spawns"),
            successors: metrics.register_counter("accel.successors"),
            args: metrics.register_counter("accel.args"),
            ops: metrics.register_counter("accel.ops"),
            tasks: metrics.register_counter("accel.tasks"),
            task_ps: metrics.register_histogram("accel.task_ps"),
            trace_dropped: metrics.register_counter("trace.dropped"),
            queue_peak_sum: metrics.register_counter("accel.queue_peak_sum"),
            pstore_peak_sum: metrics.register_counter("accel.pstore_peak_sum"),
            pe_tasks: (0..num_pes)
                .map(|pe| metrics.register_counter(&format!("pe{pe}.tasks")))
                .collect(),
            pe_busy_ps: (0..num_pes)
                .map(|pe| metrics.register_counter(&format!("pe{pe}.busy_ps")))
                .collect(),
        }
    }
}

impl<P: SchedulingPolicy> FabricEngine<P> {
    /// Creates an engine for `cfg` with the benchmark's execution profile.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`AccelConfig::validate`] or names
    /// a different architecture than the policy implements. Use
    /// [`FabricEngine::try_new`] to handle those cases as errors.
    pub fn new(cfg: AccelConfig, profile: ExecProfile) -> Self {
        Self::try_new(cfg, profile).expect("invalid accelerator configuration")
    }

    /// Fallible constructor: returns [`AccelError::InvalidConfig`] if the
    /// configuration fails [`AccelConfig::validate`] or names a different
    /// architecture than the policy implements.
    pub fn try_new(cfg: AccelConfig, profile: ExecProfile) -> Result<Self, AccelError> {
        cfg.validate()
            .map_err(|e| AccelError::InvalidConfig(e.to_string()))?;
        let policy = P::for_config(&cfg);
        if cfg.arch != policy.arch() {
            return Err(AccelError::InvalidConfig(format!(
                "the {} engine requires ArchKind::{:?} (got ArchKind::{:?})",
                policy.kind(),
                policy.arch(),
                cfg.arch
            )));
        }
        let backend = MemBackend::for_config(&cfg);
        let num_pes = cfg.num_pes();
        let mut metrics = Metrics::new();
        let ids = FabricIds::register(&mut metrics, num_pes);
        register_fault_metrics(&mut metrics);
        let link = LinkState::for_config(&cfg, &mut metrics);
        let faults = cfg
            .fault_plan
            .as_ref()
            .map(|plan| FaultState::new(plan, num_pes, cfg.tiles));
        Ok(FabricEngine {
            policy,
            link,
            pstores: (0..cfg.tiles)
                .map(|_| PStore::new(cfg.pstore_entries))
                .collect(),
            units: UnitState::new(num_pes),
            hetero_rr: 0,
            host: [None; HOST_SLOTS],
            events: EventQueue::new(),
            task_slab: EventSlab::new(),
            scratch_args: Vec::new(),
            scratch_spawns: Vec::new(),
            outstanding: 0,
            inflight_args: 0,
            last_useful: Time::ZERO,
            faults,
            watchdog: Watchdog::new(cfg.clock.cycles_to_time(cfg.watchdog_quiescence_cycles)),
            trace: Tracer::bounded(cfg.trace_capacity),
            telemetry: (cfg.telemetry_every_cycles > 0).then(|| {
                TelemetrySampler::new(cfg.clock.cycles_to_time(cfg.telemetry_every_cycles))
            }),
            next_task_id: 1,
            metrics,
            ids,
            error: None,
            result_slot: None,
            launched: false,
            mem: Memory::new(),
            backend,
            cfg,
            profile,
        })
    }

    /// Mutable access to functional memory for input setup.
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Shared access to functional memory for output checking.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> &AccelConfig {
        &self.cfg
    }

    /// The engine's metrics registry (fully aggregated only after
    /// [`FabricEngine::run`] returns, which moves it into the result).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn cycles(&self, n: u64) -> Time {
        self.cfg.clock.cycles_to_time(n)
    }

    /// Chip a unit is partitioned onto; the host interface block
    /// (`unit == num_pes`) sits on chip 0 next to the platform's host port.
    fn chip_of_unit(&self, unit: usize) -> usize {
        if unit >= self.cfg.num_pes() {
            0
        } else {
            self.cfg.chip_of_pe(unit)
        }
    }

    /// Routes a message leaving chip `src` at `at` toward chip `dst`
    /// through the inter-chip link tier, returning its arrival time.
    ///
    /// The directed pair's link serializes messages on its bounded
    /// bandwidth: a message departs no earlier than the pair's `next_free`
    /// horizon (the wait is counted in `link.stall_ps` and stamped into the
    /// [`TraceEvent::LinkXfer`] record), occupies the link for the
    /// occupancy window, and pays one link latency per topology hop. A
    /// no-op on single-chip configurations or intra-chip traffic.
    fn link_transit(&mut self, at: Time, src: usize, dst: usize, class: u8) -> Time {
        let Some(link) = self.link.as_mut() else {
            return at;
        };
        if src == dst {
            return at;
        }
        let hops = link.topology.hops(src, dst, link.chips);
        let pair = src * link.chips + dst;
        let depart = at.max(link.next_free[pair]);
        link.next_free[pair] = depart + link.occupancy;
        let wait_ps = (depart - at).as_ps();
        let (ids, latency) = (link.ids, link.latency);
        self.metrics.inc(ids.msgs);
        self.metrics.inc(match class {
            LINK_STEAL_REQ | LINK_STEAL_REPLY => ids.steal_msgs,
            LINK_ARG => ids.arg_msgs,
            _ => ids.task_msgs,
        });
        self.metrics.add_to(ids.stall_ps, wait_ps);
        self.trace.emit(
            at,
            TraceEvent::LinkXfer {
                src_chip: src as u32,
                dst_chip: dst as u32,
                class,
                wait_ps,
            },
        );
        depart + Time::from_ps(latency.as_ps() * hops)
    }

    /// Hands out the next run-unique task instance id.
    fn alloc_task_id(&mut self) -> u64 {
        let id = self.next_task_id;
        self.next_task_id += 1;
        id
    }

    fn is_dead(&self, pe: usize) -> bool {
        self.faults.as_ref().is_some_and(|f| f.dead[pe])
    }

    /// Whether `pe` can accept new work of type `ty`: it supports the type
    /// and has not been killed by a fault.
    fn can_run(&self, pe: usize, ty: TaskTypeId) -> bool {
        !self.is_dead(pe) && self.cfg.pe_supports(pe, ty)
    }

    /// Records forward progress by `unit` at `at` for the quiescence
    /// watchdog.
    fn progress(&mut self, at: Time, unit: usize) {
        self.watchdog.progress(at, unit);
    }

    /// Builds the [`AccelError::Stalled`] diagnosis, emitting the
    /// `watchdog.stall` trace event and counter.
    fn watchdog_stall(&mut self, now: Time) -> AccelError {
        let blocked_unit = (0..self.cfg.num_pes())
            .find(|&pe| !self.policy.unit_queue_empty(pe))
            .or((!self.policy.host_queue_empty()).then_some(self.cfg.num_pes()));
        self.watchdog
            .stall(&mut self.metrics, &mut self.trace, now, blocked_unit)
    }

    /// Runs `root` to completion.
    ///
    /// The host writes the root task into the interface block; PEs acquire
    /// it over the steal network, and the simulation proceeds until every
    /// task has drained. Consumes the engine's launch state: call once per
    /// engine. On an engine restored from a snapshot the launch is skipped
    /// (the restored state is already mid-run) and the run resumes.
    ///
    /// # Errors
    ///
    /// See [`AccelError`].
    pub fn run<W: Worker + ?Sized>(
        &mut self,
        worker: &mut W,
        root: Task,
    ) -> Result<AccelResult, AccelError> {
        self.launch(root);
        match self.run_until(worker, None)? {
            RunStatus::Finished(result) => Ok(result),
            RunStatus::Paused { .. } => unreachable!("run_until without a pause never pauses"),
        }
    }

    /// Seeds `root` at the host interface block and schedules the launch
    /// events (PE wakes, timed faults). A no-op when the engine is already
    /// launched — notably after [`FabricEngine::restore`].
    pub fn launch(&mut self, root: Task) {
        if self.launched {
            return;
        }
        self.launched = true;
        self.result_slot = match root.k {
            Continuation::Host { slot } => Some(slot),
            _ => None,
        };
        let root = root.with_id(self.alloc_task_id());
        self.policy.seed(root);
        self.outstanding = 1;
        for pe in 0..self.cfg.num_pes() {
            self.events.push(Time::ZERO, Event::PeWake { pe });
        }
        let timed = self
            .faults
            .as_ref()
            .map(|f| f.sched.timed())
            .unwrap_or_default();
        for (at, spec) in timed {
            self.events.push(at, Event::FaultFire { spec });
        }
    }

    /// Advances the simulation until the computation drains or, when
    /// `pause_at` is given, until the next pending event lies beyond that
    /// boundary with work still outstanding. Call [`FabricEngine::launch`]
    /// first (or restore a snapshot); legs compose — keep calling with the
    /// same worker until [`RunStatus::Finished`].
    ///
    /// # Errors
    ///
    /// See [`AccelError`].
    pub fn run_until<W: Worker + ?Sized>(
        &mut self,
        worker: &mut W,
        pause_at: Option<Time>,
    ) -> Result<RunStatus, AccelError> {
        let limit = Time::from_us(self.cfg.max_sim_time_us);

        loop {
            if let Some(pause) = pause_at {
                // Pause only between events and only while work remains; a
                // drained computation always runs to its finished result.
                if self.outstanding > 0 || self.inflight_args > 0 {
                    match self.events.peek_time() {
                        Some(next) if next > pause => return Ok(RunStatus::Paused { at: pause }),
                        _ => {}
                    }
                }
            }
            let Some((now, event)) = self.events.pop() else {
                break;
            };
            if self.outstanding == 0 && self.inflight_args == 0 {
                break;
            }
            if now > limit {
                return Err(AccelError::TimedOut);
            }
            if self.watchdog.expired(now) {
                return Err(self.watchdog_stall(now));
            }
            if self.telemetry.as_ref().is_some_and(|t| t.due(now)) {
                // Sample at the epoch boundary *before* handling the event
                // that crossed it: the gauges describe the state every event
                // up to the boundary produced, so a checkpointed run resumes
                // with an identical timeline (the pause check above fires on
                // the same peeked event).
                let gauges = self.telemetry_gauges(now);
                let metrics = &self.metrics;
                if let Some(t) = self.telemetry.as_mut() {
                    t.tick(now, metrics, &gauges);
                }
            }
            self.handle(now, event, worker);
            if let Some(err) = self.error.take() {
                return Err(err);
            }
        }

        if self.outstanding > 0 || self.inflight_args > 0 {
            // The event queue drained with work still outstanding: nothing
            // can ever make progress again (e.g. an unrecoverable message
            // loss or every supporting PE dead with stranded work).
            let at = self.last_useful.max(self.watchdog.last_progress());
            return Err(self.watchdog_stall(at));
        }

        let leaked: usize = self.pstores.iter().map(|p| p.occupancy()).sum();
        if leaked > 0 {
            return Err(AccelError::LeakedPending { count: leaked });
        }
        let result = match self.result_slot {
            Some(slot) => self.host[slot as usize].ok_or(AccelError::NoResult { slot })?,
            None => 0,
        };
        // Close the final (partial) telemetry window before the end-of-run
        // rollups land, so the last sample's deltas cover only counters that
        // moved during simulation, not the collect_stats aggregates.
        let gauges = self.telemetry_gauges(self.last_useful);
        let timeline = match self.telemetry.as_mut() {
            Some(t) => {
                t.flush(self.last_useful, &self.metrics, &gauges);
                t.take_timeline()
            }
            None => Timeline::default(),
        };
        self.collect_stats();
        let mut trace = std::mem::take(&mut self.trace);
        trace.absorb(self.backend.take_trace());
        trace.finish();
        self.metrics.add_to(self.ids.trace_dropped, trace.dropped());
        Ok(RunStatus::Finished(AccelResult {
            result,
            elapsed: self.last_useful,
            metrics: std::mem::take(&mut self.metrics),
            trace,
            timeline,
        }))
    }

    /// Instantaneous engine gauges for one telemetry sample: pending event
    /// count, ready tasks across the policy's stores, inter-chip links
    /// still serializing a message, and total P-Store occupancy.
    fn telemetry_gauges(&self, now: Time) -> [(&'static str, u64); 4] {
        let inflight_links = self.link.as_ref().map_or(0, |l| {
            l.next_free.iter().filter(|free| **free > now).count() as u64
        });
        let pstore = self.pstores.iter().map(PStore::occupancy).sum::<usize>();
        [
            ("events", self.events.len() as u64),
            ("ready_tasks", self.policy.ready_tasks()),
            ("inflight_links", inflight_links),
            ("pstore_occupancy", pstore as u64),
        ]
    }

    /// Value delivered to a host result register, if any.
    pub fn host_result(&self, slot: u8) -> Option<u64> {
        self.host.get(slot as usize).copied().flatten()
    }

    /// Serializes the complete mutable simulation state into a versioned,
    /// checksummed [`Snapshot`]. Capture at a [`RunStatus::Paused`] boundary;
    /// a fresh engine built from the same configuration restores the
    /// snapshot and continues byte-identically to an uninterrupted run.
    pub fn snapshot(&self) -> Snapshot {
        let events = JsonValue::Array(
            self.events
                .ordered()
                .into_iter()
                .map(|(when, event)| {
                    let mut words = vec![when.as_ps()];
                    words.extend(event.to_words(&self.task_slab));
                    snapshot::arr_u64(words)
                })
                .collect(),
        );
        let host = JsonValue::Array(
            self.host
                .iter()
                .map(|slot| snapshot::arr_u64(slot.iter().copied()))
                .collect(),
        );
        let mut payload = vec![
            ("launched", snapshot::num(u64::from(self.launched))),
            (
                "result_slot",
                snapshot::num(self.result_slot.map_or(0, |s| u64::from(s) + 1)),
            ),
            ("next_task_id", snapshot::num(self.next_task_id)),
            ("outstanding", snapshot::num(self.outstanding)),
            ("inflight_args", snapshot::num(self.inflight_args)),
            ("last_useful_ps", snapshot::num(self.last_useful.as_ps())),
            ("hetero_rr", snapshot::num(self.hetero_rr as u64)),
            (
                "steal_fails",
                snapshot::arr_u64(self.units.steal_fails.iter().map(|f| u64::from(*f))),
            ),
            (
                "busy_until_ps",
                snapshot::arr_u64(self.units.busy_until.iter().map(|t| t.as_ps())),
            ),
            ("host", host),
            ("events", events),
            ("policy", self.policy.state_to_json_value()),
            (
                "pstores",
                JsonValue::Array(
                    self.pstores
                        .iter()
                        .map(PStore::state_to_json_value)
                        .collect(),
                ),
            ),
            (
                "watchdog",
                snapshot::obj(vec![
                    (
                        "last_progress_ps",
                        snapshot::num(self.watchdog.last_progress().as_ps()),
                    ),
                    (
                        "last_unit",
                        snapshot::num(self.watchdog.last_unit().map_or(0, |u| u as u64 + 1)),
                    ),
                ]),
            ),
            (
                "metrics",
                JsonValue::parse(&self.metrics.to_json()).expect("metrics emit valid JSON"),
            ),
            ("mem", self.mem.state_to_json_value()),
            ("backend", self.backend.state_to_json_value()),
            ("trace", self.trace.state_to_json_value()),
        ];
        if let Some(link) = &self.link {
            payload.push((
                "link",
                snapshot::arr_u64(link.next_free.iter().map(|t| t.as_ps())),
            ));
        }
        if let Some(faults) = &self.faults {
            let (rng, remaining) = faults.sched.save_state();
            payload.push((
                "faults",
                snapshot::obj(vec![
                    ("rng", snapshot::num(rng)),
                    (
                        "remaining",
                        snapshot::arr_u64(remaining.iter().map(|r| u64::from(*r))),
                    ),
                    (
                        "dead",
                        snapshot::arr_u64(faults.dead.iter().map(|d| u64::from(*d))),
                    ),
                    (
                        "rescue_pending",
                        snapshot::arr_u64(
                            faults
                                .rescue_pending
                                .iter()
                                .map(|r| r.map_or(0, |s| s as u64 + 1)),
                        ),
                    ),
                    (
                        "corrupt_pending",
                        JsonValue::Array(
                            faults
                                .corrupt_pending
                                .iter()
                                .map(|tile| {
                                    snapshot::arr_u64(tile.iter().flat_map(|(entry, spec)| {
                                        [u64::from(*entry), *spec as u64]
                                    }))
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        if let Some(telemetry) = &self.telemetry {
            payload.push(("telemetry", telemetry.state_to_json_value()));
        }
        Snapshot::new(self.policy.kind().label(), snapshot::obj(payload))
    }

    /// Overwrites this engine's mutable state with a [`Snapshot`] captured
    /// by [`FabricEngine::snapshot`] on an engine built from the same
    /// configuration. The engine must have been freshly constructed with
    /// [`FabricEngine::try_new`] from the identical [`AccelConfig`] and
    /// [`ExecProfile`]; structural mismatches (PE count, tile count, queue
    /// capacities, memory backend) are rejected.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::EngineMismatch`] when the snapshot was taken by a
    /// different engine family, [`SnapshotError::Malformed`] when the
    /// payload does not describe this configuration.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        snap.expect_engine(self.policy.kind().label())?;
        let p = &snap.payload;
        let num_pes = self.cfg.num_pes();

        self.launched = snapshot::get_u64(p, "launched")? != 0;
        self.result_slot = match snapshot::get_u64(p, "result_slot")? {
            0 => None,
            s => Some(u8::try_from(s - 1).map_err(|_| malformed("result_slot out of range"))?),
        };
        self.next_task_id = snapshot::get_u64(p, "next_task_id")?;
        self.outstanding = snapshot::get_u64(p, "outstanding")?;
        self.inflight_args = snapshot::get_u64(p, "inflight_args")?;
        self.last_useful = Time::from_ps(snapshot::get_u64(p, "last_useful_ps")?);
        self.hetero_rr = snapshot::get_u64(p, "hetero_rr")? as usize;

        let steal_fails = snapshot::get_u64s(p, "steal_fails")?;
        let busy_until = snapshot::get_u64s(p, "busy_until_ps")?;
        if steal_fails.len() != num_pes || busy_until.len() != num_pes {
            return Err(malformed(format!(
                "snapshot describes {} PEs, this engine has {num_pes}",
                steal_fails.len()
            )));
        }
        self.units.steal_fails = steal_fails
            .iter()
            .map(|f| u32::try_from(*f).map_err(|_| malformed("steal_fails overflows u32")))
            .collect::<Result<_, _>>()?;
        self.units.busy_until = busy_until.iter().map(|ps| Time::from_ps(*ps)).collect();

        let host = snapshot::get_arr(p, "host")?;
        if host.len() != HOST_SLOTS {
            return Err(malformed(format!(
                "snapshot holds {} host slots, expected {HOST_SLOTS}",
                host.len()
            )));
        }
        for (slot, value) in self.host.iter_mut().zip(host) {
            let cell = value
                .as_array()
                .ok_or_else(|| malformed("host slot is not an array"))?;
            *slot = match cell {
                [] => None,
                [v] => Some(v.as_u64().ok_or_else(|| malformed("bad host value"))?),
                _ => return Err(malformed("host slot holds more than one value")),
            };
        }

        self.events.clear();
        self.task_slab.clear();
        for entry in snapshot::get_arr(p, "events")? {
            let words: Vec<u64> = entry
                .as_array()
                .map(|a| a.iter().filter_map(JsonValue::as_u64).collect())
                .ok_or_else(|| malformed("event entry is not an array"))?;
            let (when, body) = words
                .split_first()
                .ok_or_else(|| malformed("empty event entry"))?;
            let event = Event::from_words(body, &mut self.task_slab).map_err(malformed)?;
            self.events.push(Time::from_ps(*when), event);
        }

        self.policy
            .restore_state(snapshot::get(p, "policy")?)
            .map_err(malformed)?;

        let pstores = snapshot::get_arr(p, "pstores")?;
        if pstores.len() != self.pstores.len() {
            return Err(malformed(format!(
                "snapshot holds {} P-Store tiles, this engine has {}",
                pstores.len(),
                self.pstores.len()
            )));
        }
        for (pstore, state) in self.pstores.iter_mut().zip(pstores) {
            pstore.restore_state(state).map_err(malformed)?;
        }

        let watchdog = snapshot::get(p, "watchdog")?;
        let last_progress = Time::from_ps(snapshot::get_u64(watchdog, "last_progress_ps")?);
        let last_unit = match snapshot::get_u64(watchdog, "last_unit")? {
            0 => None,
            u => Some(u as usize - 1),
        };
        self.watchdog.load(last_progress, last_unit);

        // Metrics restore: rebuild a fresh registry (identical registration
        // order keeps the typed CounterId/HistogramId handles valid), then
        // merge the saved values into its zeroed slots.
        let saved = Metrics::from_json(&snapshot::get(p, "metrics")?.to_json())
            .map_err(|e| malformed(format!("metrics: {e}")))?;
        let mut metrics = Metrics::new();
        self.ids = FabricIds::register(&mut metrics, num_pes);
        register_fault_metrics(&mut metrics);
        self.link = LinkState::for_config(&self.cfg, &mut metrics);
        metrics.merge(&saved);
        self.metrics = metrics;

        self.mem
            .restore_state(snapshot::get(p, "mem")?)
            .map_err(malformed)?;
        self.backend
            .restore_state(snapshot::get(p, "backend")?)
            .map_err(malformed)?;
        self.trace =
            Tracer::state_from_json_value(snapshot::get(p, "trace")?).map_err(malformed)?;

        match (&mut self.link, p.get("link")) {
            (Some(link), Some(_)) => {
                let next_free = snapshot::get_u64s(p, "link")?;
                if next_free.len() != link.chips * link.chips {
                    return Err(malformed("link state chip count mismatch"));
                }
                link.next_free = next_free.iter().map(|ps| Time::from_ps(*ps)).collect();
            }
            (None, None) => {}
            (Some(_), None) => {
                return Err(malformed(
                    "this engine models an inter-chip link, the snapshot does not",
                ));
            }
            (None, Some(_)) => {
                return Err(malformed(
                    "the snapshot carries link state, this engine has no cluster",
                ));
            }
        }

        match (&mut self.faults, p.get("faults")) {
            (Some(faults), Some(saved)) => {
                let rng = snapshot::get_u64(saved, "rng")?;
                let remaining = snapshot::get_u64s(saved, "remaining")?
                    .iter()
                    .map(|r| u32::try_from(*r).map_err(|_| malformed("fault budget overflow")))
                    .collect::<Result<Vec<u32>, _>>()?;
                faults.sched.load_state(rng, remaining).map_err(malformed)?;
                let dead = snapshot::get_u64s(saved, "dead")?;
                let rescue = snapshot::get_u64s(saved, "rescue_pending")?;
                if dead.len() != num_pes || rescue.len() != num_pes {
                    return Err(malformed("fault state PE count mismatch"));
                }
                faults.dead = dead.iter().map(|d| *d != 0).collect();
                faults.rescue_pending = rescue
                    .iter()
                    .map(|r| if *r == 0 { None } else { Some(*r as usize - 1) })
                    .collect();
                let corrupt = snapshot::get_arr(saved, "corrupt_pending")?;
                if corrupt.len() != faults.corrupt_pending.len() {
                    return Err(malformed("fault state tile count mismatch"));
                }
                faults.corrupt_pending = corrupt
                    .iter()
                    .map(|tile| {
                        let flat: Vec<u64> = tile
                            .as_array()
                            .map(|a| a.iter().filter_map(JsonValue::as_u64).collect())
                            .ok_or_else(|| malformed("corrupt_pending tile is not an array"))?;
                        if !flat.len().is_multiple_of(2) {
                            return Err(malformed("corrupt_pending holds an odd word count"));
                        }
                        flat.chunks(2)
                            .map(|pair| {
                                let entry = u32::try_from(pair[0])
                                    .map_err(|_| malformed("corrupt entry overflow"))?;
                                Ok((entry, pair[1] as usize))
                            })
                            .collect()
                    })
                    .collect::<Result<_, SnapshotError>>()?;
            }
            (None, None) => {}
            (Some(_), None) => {
                return Err(malformed(
                    "this engine carries a fault plan, the snapshot does not",
                ));
            }
            (None, Some(_)) => {
                return Err(malformed(
                    "the snapshot carries fault state, this engine has no fault plan",
                ));
            }
        }

        match (&mut self.telemetry, p.get("telemetry")) {
            (Some(telemetry), Some(saved)) => {
                let restored = TelemetrySampler::state_from_json_value(saved).map_err(malformed)?;
                if restored.every() != telemetry.every() {
                    return Err(malformed("telemetry epoch width mismatch"));
                }
                *telemetry = restored;
            }
            (None, None) => {}
            (Some(_), None) => {
                return Err(malformed(
                    "this engine samples telemetry, the snapshot does not",
                ));
            }
            (None, Some(_)) => {
                return Err(malformed(
                    "the snapshot carries telemetry state, this engine has telemetry off",
                ));
            }
        }

        self.error = None;
        Ok(())
    }

    fn collect_stats(&mut self) {
        let (queue_peak, queue_peak_sum) = self.policy.queue_peaks();
        let pstore_peak_sum: usize = self.pstores.iter().map(PStore::peak).sum();
        self.metrics.max("accel.queue_peak", queue_peak);
        self.metrics.add_to(self.ids.queue_peak_sum, queue_peak_sum);
        self.metrics
            .add_to(self.ids.pstore_peak_sum, pstore_peak_sum as u64);
        let mem_stats = self.backend.take_stats();
        self.metrics.merge(&mem_stats);
    }

    fn handle<W: Worker + ?Sized>(&mut self, now: Time, event: Event, worker: &mut W) {
        match event {
            Event::PeWake { pe } => self.pe_wake(now, pe, worker),
            Event::StealArrive { thief, victim } => self.steal_arrive(now, thief, victim),
            Event::StealReply { thief, task } => {
                let task = task.map(|slot| self.task_slab.take(slot));
                self.steal_reply(now, thief, task, worker)
            }
            Event::ArgArrive {
                k,
                value,
                from_pe,
                from_task,
                dup_of,
            } => self.arg_arrive(now, k, value, from_pe, from_task, dup_of),
            Event::TaskRun { pe, task, dup_of } => {
                let task = self.task_slab.take(task);
                self.task_run(now, pe, task, dup_of, worker)
            }
            Event::FaultFire { spec } => self.fault_fire(now, spec),
            Event::ArgResend {
                k,
                value,
                from_pe,
                from_task,
                attempt,
                spec,
            } => self.send_arg_msg(now, k, value, from_pe, from_task, attempt, spec),
            Event::TaskResend {
                pe,
                task,
                attempt,
                spec,
            } => {
                let task = self.task_slab.take(task);
                self.send_task_msg(now, pe, task, attempt, spec)
            }
        }
    }

    fn is_busy(&self, pe: usize, now: Time) -> bool {
        now < self.units.busy_until[pe]
    }

    fn pe_wake<W: Worker + ?Sized>(&mut self, now: Time, pe: usize, worker: &mut W) {
        if self.is_dead(pe) || self.is_busy(pe, now) {
            return;
        }
        if let Some(task) = self.policy.pop_local(pe, now) {
            self.units.steal_fails[pe] = 0;
            self.execute_task(
                now + self.cycles(self.cfg.costs.dispatch_cycles),
                pe,
                task,
                worker,
            );
        } else {
            self.begin_steal(now, pe);
        }
    }

    fn begin_steal(&mut self, now: Time, pe: usize) {
        let victim = self.policy.acquire_target(pe);
        self.metrics.inc(self.ids.steal_attempts);
        self.trace.emit(
            now,
            TraceEvent::StealRequest {
                thief: pe as u32,
                victim: victim as u32,
            },
        );
        // A cross-chip request pays the inter-chip link past the local
        // crossbar hop (hierarchical policies make this the rare case).
        let arrive = self.link_transit(
            now + self.cycles(self.cfg.costs.net_hop_cycles),
            self.chip_of_unit(pe),
            self.chip_of_unit(victim),
            LINK_STEAL_REQ,
        );
        self.events
            .push(arrive, Event::StealArrive { thief: pe, victim });
    }

    fn steal_arrive(&mut self, now: Time, thief: usize, victim: usize) {
        let service = self.cycles(self.cfg.costs.steal_service_cycles);
        let (task, done) = if self.is_dead(thief) {
            // The thief died while its request was in flight; the victim's
            // TMU does not hand work to a corpse (and must not disturb its
            // queue state serving one).
            (None, now + service)
        } else {
            let FabricEngine { policy, cfg, .. } = self;
            let pred = |t: &Task| cfg.pe_supports(thief, t.ty);
            policy.serve_acquire(victim, now, service, &pred)
        };
        if task.is_some() {
            self.metrics.inc(self.ids.steal_hits);
            self.trace.emit(
                done,
                TraceEvent::StealGrant {
                    thief: thief as u32,
                    victim: victim as u32,
                },
            );
            if let Some(link) = self.link.as_ref() {
                if self.chip_of_unit(thief) != self.chip_of_unit(victim) {
                    self.metrics.inc(link.ids.steal_hits);
                }
            }
            if victim < self.cfg.num_pes() && self.is_dead(victim) {
                // Work stealing doubles as the rescue path for a dead PE's
                // stranded deque.
                self.metrics.incr("fault.rescued_tasks");
                self.check_rescued(done, victim);
            }
        } else {
            self.trace.emit(
                done,
                TraceEvent::StealFail {
                    thief: thief as u32,
                    victim: victim as u32,
                },
            );
        }
        let reply = self.link_transit(
            done + self.cycles(self.cfg.costs.net_hop_cycles),
            self.chip_of_unit(victim),
            self.chip_of_unit(thief),
            LINK_STEAL_REPLY,
        );
        let task = task.map(|t| self.task_slab.insert(t));
        self.events.push(reply, Event::StealReply { thief, task });
    }

    fn steal_reply<W: Worker + ?Sized>(
        &mut self,
        now: Time,
        thief: usize,
        task: Option<Task>,
        worker: &mut W,
    ) {
        match task {
            Some(t) => {
                if self.is_dead(thief) {
                    // The thief died with the reply in flight; forward the
                    // task to a live supporter instead of losing it.
                    let Some(dest) = self.supporter_for(thief, t.ty) else {
                        self.error = Some(AccelError::Unsupported(format!(
                            "no live PE supports task type {}",
                            t.ty
                        )));
                        return;
                    };
                    self.metrics.incr("fault.rescued_tasks");
                    self.push_local(dest, t, now);
                    self.events.push(now, Event::PeWake { pe: dest });
                    return;
                }
                self.units.steal_fails[thief] = 0;
                if self.is_busy(thief, now) {
                    // The thief picked up greedy-routed work meanwhile; bank
                    // the stolen task in its queue.
                    self.push_local(thief, t, now);
                } else {
                    self.execute_task(now, thief, t, worker);
                }
            }
            None => {
                if self.is_dead(thief) {
                    // A corpse does not reschedule itself.
                    return;
                }
                // Exponential backoff caps event churn while the accelerator
                // is starved for parallelism (e.g. quicksort's serial
                // partition phases).
                let fails = self.units.steal_fails[thief].min(6);
                self.units.steal_fails[thief] = self.units.steal_fails[thief].saturating_add(1);
                let backoff = self.cfg.costs.steal_backoff_cycles << fails;
                self.events
                    .push(now + self.cycles(backoff), Event::PeWake { pe: thief });
            }
        }
    }

    fn push_local(&mut self, pe: usize, task: Task, at: Time) {
        if self.policy.push(pe, task, at).is_err() {
            self.error = Some(AccelError::QueueFull { pe });
        }
    }

    fn trace_injected(&mut self, at: Time, spec: usize, unit: usize) {
        record_injected(&mut self.metrics, &mut self.trace, at, spec, unit);
    }

    fn trace_recovered(&mut self, at: Time, spec: usize, unit: usize) {
        record_recovered(&mut self.metrics, &mut self.trace, at, spec, unit);
    }

    /// A planned one-shot fault fires: kill a PE, stall a PE, or corrupt a
    /// P-Store entry. Network faults are reactive (consulted per send) and
    /// never reach here.
    fn fault_fire(&mut self, now: Time, spec: usize) {
        let Some(kind) = self.faults.as_ref().map(|f| f.sched.spec(spec).kind) else {
            return;
        };
        match kind {
            FaultKind::PeDeath { pe } => {
                if self.is_dead(pe) {
                    self.metrics.incr("fault.skipped");
                    return;
                }
                self.faults.as_mut().unwrap().dead[pe] = true;
                self.trace_injected(now, spec, pe);
                self.metrics.incr("fault.pe_deaths");
                if self.policy.unit_queue_empty(pe) {
                    // Nothing to rescue: the fabric already routes around the
                    // corpse, so the fault is absorbed immediately.
                    self.trace_recovered(now, spec, pe);
                } else {
                    self.faults.as_mut().unwrap().rescue_pending[pe] = Some(spec);
                }
            }
            FaultKind::PeStall { pe, cycles } => {
                if self.is_dead(pe) {
                    self.metrics.incr("fault.skipped");
                    return;
                }
                let resume = self.units.busy_until[pe].max(now) + self.cycles(cycles);
                self.units.busy_until[pe] = resume;
                self.trace_injected(now, spec, pe);
                self.metrics.incr("fault.pe_stalls");
                // A transient stall always clears itself; recovery is the
                // wake at `resume` (the tracer's stable sort orders it).
                self.trace_recovered(resume, spec, pe);
                self.events.push(resume, Event::PeWake { pe });
            }
            FaultKind::PStoreCorrupt { tile, mask } => {
                match self.pstores[tile].corrupt(mask) {
                    Some(entry) => {
                        self.trace_injected(now, spec, tile);
                        self.metrics.incr("fault.pstore_hits");
                        if self.pstores[tile].tainted(entry) {
                            self.faults.as_mut().unwrap().corrupt_pending[tile].push((entry, spec));
                        } else {
                            // The upset XOR-cancelled an earlier one on the
                            // same entry: the stored words are back to their
                            // true values, so every pending corruption of the
                            // entry is resolved, this one included.
                            let cancelled: Vec<usize> = {
                                let queue =
                                    &mut self.faults.as_mut().unwrap().corrupt_pending[tile];
                                let hits = queue
                                    .iter()
                                    .filter(|(e, _)| *e == entry)
                                    .map(|(_, s)| *s)
                                    .collect();
                                queue.retain(|(e, _)| *e != entry);
                                hits
                            };
                            for s in cancelled {
                                self.trace_recovered(now, s, tile);
                            }
                            self.trace_recovered(now, spec, tile);
                        }
                    }
                    // No live entry to corrupt: the fault lands on unused
                    // storage and is a no-op.
                    None => self.metrics.incr("fault.skipped"),
                }
            }
            FaultKind::NetDrop { .. } | FaultKind::NetDup { .. } => {}
        }
    }

    /// Sends an argument message through the (possibly faulty) argument
    /// network. `at` is the delivery time computed by the sender; `attempt`
    /// counts prior drops of this message and `spec` is the spec that caused
    /// the most recent drop.
    #[allow(clippy::too_many_arguments)]
    fn send_arg_msg(
        &mut self,
        at: Time,
        k: Continuation,
        value: u64,
        from_pe: usize,
        from_task: u64,
        attempt: u8,
        spec: usize,
    ) {
        let verdict = match self.faults.as_mut() {
            Some(fs) => fs.sched.on_send(NetClass::Arg, at),
            None => SendVerdict::Deliver,
        };
        match verdict {
            SendVerdict::Deliver => {
                // Every prior drop of this message is now masked: one
                // recovery per injected drop keeps traces and counters equal.
                for _ in 0..attempt {
                    self.trace_recovered(at, spec, from_pe);
                }
                self.events.push(
                    at,
                    Event::ArgArrive {
                        k,
                        value,
                        from_pe,
                        from_task,
                        dup_of: None,
                    },
                );
            }
            SendVerdict::Drop { spec: drop_spec } => {
                self.trace_injected(at, drop_spec, from_pe);
                self.metrics.incr("fault.dropped_args");
                if attempt >= MAX_SEND_RETRIES {
                    self.metrics.incr("fault.unrecovered");
                    self.trace.emit(
                        at,
                        TraceEvent::FaultUnrecovered {
                            spec: drop_spec as u32,
                            unit: from_pe as u32,
                        },
                    );
                    // The argument is lost for good; `inflight_args` stays
                    // elevated so the watchdog diagnoses the stall.
                } else {
                    self.metrics.incr("fault.retries");
                    let backoff = self.cfg.costs.steal_backoff_cycles << attempt.min(6);
                    self.events.push(
                        at + self.cycles(backoff),
                        Event::ArgResend {
                            k,
                            value,
                            from_pe,
                            from_task,
                            attempt: attempt + 1,
                            spec: drop_spec,
                        },
                    );
                }
            }
            SendVerdict::Duplicate { spec: dup_spec } => {
                self.trace_injected(at, dup_spec, from_pe);
                self.metrics.incr("fault.dup_args");
                for _ in 0..attempt {
                    self.trace_recovered(at, spec, from_pe);
                }
                // Both copies are delivered; the receiver discards the
                // flagged duplicate one hop later (sequence-number dedup).
                self.inflight_args += 1;
                self.events.push(
                    at,
                    Event::ArgArrive {
                        k,
                        value,
                        from_pe,
                        from_task,
                        dup_of: None,
                    },
                );
                self.events.push(
                    at + self.cycles(self.cfg.costs.net_hop_cycles),
                    Event::ArgArrive {
                        k,
                        value,
                        from_pe,
                        from_task,
                        dup_of: Some(dup_spec),
                    },
                );
            }
        }
    }

    /// Sends a ready task across the (possibly faulty) task network toward
    /// `dest`; delivery pays one crossbar hop past `at`.
    fn send_task_msg(&mut self, at: Time, dest: usize, task: Task, attempt: u8, spec: usize) {
        let hop = self.cycles(self.cfg.costs.net_hop_cycles);
        let verdict = match self.faults.as_mut() {
            Some(fs) => fs.sched.on_send(NetClass::Task, at),
            None => SendVerdict::Deliver,
        };
        match verdict {
            SendVerdict::Deliver => {
                for _ in 0..attempt {
                    self.trace_recovered(at, spec, dest);
                }
                self.events.push(
                    at + hop,
                    Event::TaskRun {
                        pe: dest,
                        task: self.task_slab.insert(task),
                        dup_of: None,
                    },
                );
            }
            SendVerdict::Drop { spec: drop_spec } => {
                self.trace_injected(at, drop_spec, dest);
                self.metrics.incr("fault.dropped_tasks");
                if attempt >= MAX_SEND_RETRIES {
                    self.metrics.incr("fault.unrecovered");
                    self.trace.emit(
                        at,
                        TraceEvent::FaultUnrecovered {
                            spec: drop_spec as u32,
                            unit: dest as u32,
                        },
                    );
                } else {
                    self.metrics.incr("fault.retries");
                    let backoff = self.cfg.costs.steal_backoff_cycles << attempt.min(6);
                    self.events.push(
                        at + self.cycles(backoff),
                        Event::TaskResend {
                            pe: dest,
                            task: self.task_slab.insert(task),
                            attempt: attempt + 1,
                            spec: drop_spec,
                        },
                    );
                }
            }
            SendVerdict::Duplicate { spec: dup_spec } => {
                self.trace_injected(at, dup_spec, dest);
                self.metrics.incr("fault.dup_tasks");
                for _ in 0..attempt {
                    self.trace_recovered(at, spec, dest);
                }
                self.outstanding += 1;
                self.events.push(
                    at + hop,
                    Event::TaskRun {
                        pe: dest,
                        task: self.task_slab.insert(task),
                        dup_of: None,
                    },
                );
                self.events.push(
                    at + hop + hop,
                    Event::TaskRun {
                        pe: dest,
                        task: self.task_slab.insert(task),
                        dup_of: Some(dup_spec),
                    },
                );
            }
        }
    }

    /// After a successful steal from `victim`, completes a pending PE-death
    /// recovery if the victim was dead and its deque just drained.
    fn check_rescued(&mut self, at: Time, victim: usize) {
        let pending = self.faults.as_ref().and_then(|f| f.rescue_pending[victim]);
        let Some(spec) = pending else { return };
        if !self.policy.unit_queue_empty(victim) {
            return;
        }
        self.faults.as_mut().unwrap().rescue_pending[victim] = None;
        self.metrics.incr("fault.rescues");
        self.trace_recovered(at, spec, victim);
    }

    /// Picks a live PE that can process `ty`, preferring `preferred` and
    /// then its tile (round-robin among the tile's supporters), falling back
    /// to any live supporter in the accelerator.
    fn supporter_for(&mut self, preferred: usize, ty: TaskTypeId) -> Option<usize> {
        if self.can_run(preferred, ty) {
            return Some(preferred);
        }
        let per_tile = self.cfg.pes_per_tile;
        let tile_base = self.cfg.tile_of_pe(preferred) * per_tile;
        self.hetero_rr = self.hetero_rr.wrapping_add(1);
        for i in 0..per_tile {
            let pe = tile_base + (self.hetero_rr + i) % per_tile;
            if self.can_run(pe, ty) {
                return Some(pe);
            }
        }
        (0..self.cfg.num_pes()).find(|&pe| self.can_run(pe, ty))
    }

    fn arg_arrive(
        &mut self,
        now: Time,
        k: Continuation,
        value: u64,
        from_pe: usize,
        from_task: u64,
        dup_of: Option<usize>,
    ) {
        self.inflight_args -= 1;
        if let Some(spec) = dup_of {
            // Sequence-number dedup at the receiver: the duplicate copy is
            // recognised and discarded.
            self.metrics.incr("fault.dup_discarded");
            self.trace_recovered(now, spec, from_pe);
            return;
        }
        self.last_useful = self.last_useful.max(now);
        self.progress(now, from_pe);
        match k {
            Continuation::Host { slot } => {
                self.host[slot as usize] = Some(value);
            }
            Continuation::PStore { tile, entry, slot } => {
                let join_target = self.pstores[tile as usize].pending_id(entry).unwrap_or(0);
                self.trace.emit(
                    now,
                    TraceEvent::PStoreJoin {
                        tile: tile as u32,
                        slot,
                        task: join_target,
                        from: from_task,
                    },
                );
                let outcome = match self.pstores[tile as usize].fill(entry, slot, value) {
                    Ok(outcome) => outcome,
                    Err(source) => {
                        self.error = Some(AccelError::PStoreCorrupt {
                            tile: tile as usize,
                            source,
                        });
                        return;
                    }
                };
                if outcome.repaired {
                    // The entry's ECC scrubbed injected taint on this fill.
                    self.metrics.incr("fault.pstore_repairs");
                    let specs: Vec<usize> = match self.faults.as_mut() {
                        Some(fs) => {
                            let queue = &mut fs.corrupt_pending[tile as usize];
                            let hits = queue
                                .iter()
                                .filter(|(e, _)| *e == entry)
                                .map(|(_, s)| *s)
                                .collect();
                            queue.retain(|(e, _)| *e != entry);
                            hits
                        }
                        None => Vec::new(),
                    };
                    for spec in specs {
                        self.trace_recovered(now, spec, tile as usize);
                    }
                }
                if let Some(ready) = outcome.ready {
                    self.trace.emit(
                        now,
                        TraceEvent::PStoreDealloc {
                            tile: tile as u32,
                            occupancy: self.pstores[tile as usize].occupancy() as u32,
                        },
                    );
                    self.outstanding += 1;
                    // Greedy scheduling (default): the ready task returns to
                    // the PE that produced the last argument. The ablation
                    // instead leaves it with a PE of the P-Store's tile.
                    let preferred = if self.cfg.policy.greedy_routing {
                        from_pe
                    } else {
                        tile as usize * self.cfg.pes_per_tile
                            + entry as usize % self.cfg.pes_per_tile
                    };
                    let Some(dest) = self.supporter_for(preferred, ready.ty) else {
                        self.error = Some(AccelError::Unsupported(format!(
                            "no PE supports task type {}",
                            ready.ty
                        )));
                        return;
                    };
                    if self.cfg.tile_of_pe(dest) == tile as usize {
                        // Intra-tile handoff: no routed network involved.
                        self.events.push(
                            now,
                            Event::TaskRun {
                                pe: dest,
                                task: self.task_slab.insert(ready),
                                dup_of: None,
                            },
                        );
                    } else {
                        let at = self.link_transit(
                            now,
                            self.cfg.chip_of_tile(tile as usize),
                            self.chip_of_unit(dest),
                            LINK_TASK,
                        );
                        self.send_task_msg(at, dest, ready, 0, 0);
                    }
                }
            }
        }
    }

    fn task_run<W: Worker + ?Sized>(
        &mut self,
        now: Time,
        pe: usize,
        task: Task,
        dup_of: Option<usize>,
        worker: &mut W,
    ) {
        if let Some(spec) = dup_of {
            self.outstanding -= 1;
            self.metrics.incr("fault.dup_discarded");
            self.trace_recovered(now, spec, pe);
            return;
        }
        if self.is_dead(pe) {
            // The destination died while the task was in flight: reroute to
            // a live supporter over one more crossbar hop. The reroute is
            // not subject to further injection so recovery always converges.
            let Some(dest) = self.supporter_for(pe, task.ty) else {
                self.error = Some(AccelError::Unsupported(format!(
                    "no live PE supports task type {}",
                    task.ty
                )));
                return;
            };
            self.metrics.incr("fault.rescued_tasks");
            let at = self.link_transit(
                now + self.cycles(self.cfg.costs.net_hop_cycles),
                self.chip_of_unit(pe),
                self.chip_of_unit(dest),
                LINK_TASK,
            );
            self.events.push(
                at,
                Event::TaskRun {
                    pe: dest,
                    task: self.task_slab.insert(task),
                    dup_of: None,
                },
            );
            return;
        }
        if self.is_busy(pe, now) {
            self.push_local(pe, task, now);
        } else {
            self.execute_task(now, pe, task, worker);
        }
    }

    fn execute_task<W: Worker + ?Sized>(
        &mut self,
        start: Time,
        pe: usize,
        task: Task,
        worker: &mut W,
    ) {
        let tile = self.cfg.tile_of_pe(pe);
        let port = self.backend.port_of(&self.cfg, pe);
        self.trace.emit(
            start,
            TraceEvent::TaskDispatch {
                unit: pe as u32,
                ty: task.ty.0,
                task: task.id,
            },
        );
        // Recycle the context's spill buffers across executions; the
        // capacity survives the round-trip so steady state never allocates.
        let out_args = std::mem::take(&mut self.scratch_args);
        let out_spawns = std::mem::take(&mut self.scratch_spawns);
        // Borrow the engine's pieces disjointly so the context can push
        // spawns straight into the policy with accurate visibility
        // timestamps.
        let FabricEngine {
            cfg,
            profile,
            mem,
            backend,
            pstores,
            policy,
            trace,
            next_task_id,
            ..
        } = self;
        let mut ctx = FabricCtx {
            now: start,
            pe,
            tile,
            port,
            cfg,
            profile: *profile,
            mem,
            backend,
            pstores,
            policy,
            trace,
            cur_task: task.id,
            next_task_id,
            out_args,
            out_spawns,
            spawned: 0,
            successors: 0,
            args_sent: 0,
            ops: 0,
            error: None,
        };
        worker.execute(&task, &mut ctx);
        let end = ctx.now;
        let out_args = std::mem::take(&mut ctx.out_args);
        let out_spawns = std::mem::take(&mut ctx.out_spawns);
        let (spawned, successors, args_sent, ops) =
            (ctx.spawned, ctx.successors, ctx.args_sent, ctx.ops);
        let ctx_error = ctx.error.take();
        if let Some(e) = ctx_error {
            self.error = Some(e);
            return;
        }
        for &(at, task) in &out_spawns {
            let Some(dest) = self.supporter_for(pe, task.ty) else {
                self.error = Some(AccelError::Unsupported(format!(
                    "no PE supports task type {}",
                    task.ty
                )));
                return;
            };
            let at = self.link_transit(
                at,
                self.chip_of_unit(pe),
                self.chip_of_unit(dest),
                LINK_TASK,
            );
            self.push_local(dest, task, at);
            self.events.push(at, Event::PeWake { pe: dest });
        }
        self.outstanding += spawned;
        let busy_ps = (end - start).as_ps();
        self.metrics.add_to(self.ids.spawns, spawned);
        self.metrics.add_to(self.ids.successors, successors);
        self.metrics.add_to(self.ids.args, args_sent);
        self.metrics.add_to(self.ids.ops, ops);
        self.metrics.inc(self.ids.tasks);
        self.metrics.observe(self.ids.task_ps, busy_ps);
        self.metrics.inc(self.ids.pe_tasks[pe]);
        self.metrics.add_to(self.ids.pe_busy_ps[pe], busy_ps);
        self.trace.emit(
            end,
            TraceEvent::TaskComplete {
                unit: pe as u32,
                ty: task.ty.0,
                busy_ps,
                task: task.id,
            },
        );
        for &(at, k, value) in &out_args {
            // The host interface block and chip 0 share a die; a P-Store
            // continuation lives on its tile's chip.
            let dst_chip = match k {
                Continuation::Host { .. } => 0,
                Continuation::PStore { tile, .. } => self.cfg.chip_of_tile(tile as usize),
            };
            let at = self.link_transit(at, self.chip_of_unit(pe), dst_chip, LINK_ARG);
            self.inflight_args += 1;
            self.send_arg_msg(at, k, value, pe, task.id, 0, 0);
        }
        self.last_useful = self.last_useful.max(end);
        self.progress(end, pe);
        self.outstanding -= 1;
        self.scratch_args = out_args;
        self.scratch_args.clear();
        self.scratch_spawns = out_spawns;
        self.scratch_spawns.clear();
        // The PE stays busy (gating greedy routing and steal replies) until
        // its completion wake fires at `end`.
        self.units.busy_until[pe] = end;
        self.events.push(end, Event::PeWake { pe });
    }
}

/// The PE-side [`TaskContext`] used during fabric task execution — one
/// implementation of the worker-visible memory path, spawn accounting, and
/// P-Store allocation protocol for every scheduling policy.
struct FabricCtx<'e, P: SchedulingPolicy> {
    now: Time,
    pe: usize,
    tile: usize,
    port: usize,
    cfg: &'e AccelConfig,
    profile: ExecProfile,
    mem: &'e mut Memory,
    backend: &'e mut MemBackend,
    pstores: &'e mut Vec<PStore>,
    policy: &'e mut P,
    trace: &'e mut Tracer,
    /// Instance id of the task this context executes (the `parent` of every
    /// spawn it makes).
    cur_task: u64,
    /// The engine's task-id allocator, borrowed for the task's duration.
    next_task_id: &'e mut u64,
    out_args: Vec<(Time, Continuation, u64)>,
    /// Spawns whose task type this PE's worker cannot process — routed to a
    /// supporting PE over the intra-tile bus after execution.
    out_spawns: Vec<(Time, Task)>,
    spawned: u64,
    successors: u64,
    args_sent: u64,
    ops: u64,
    error: Option<AccelError>,
}

impl<P: SchedulingPolicy> FabricCtx<'_, P> {
    fn cycles(&self, n: u64) -> Time {
        self.cfg.clock.cycles_to_time(n)
    }

    fn alloc_task_id(&mut self) -> u64 {
        let id = *self.next_task_id;
        *self.next_task_id += 1;
        id
    }
}

impl<P: SchedulingPolicy> TaskContext for FabricCtx<'_, P> {
    fn spawn(&mut self, task: Task) {
        if self.error.is_some() {
            return;
        }
        self.now += self.cycles(self.cfg.costs.spawn_cycles);
        self.spawned += 1;
        let task = task.with_id(self.alloc_task_id());
        self.trace.emit(
            self.now,
            TraceEvent::Spawn {
                unit: self.pe as u32,
                ty: task.ty.0,
                parent: self.cur_task,
                child: task.id,
            },
        );
        if self.cfg.pe_supports(self.pe, task.ty) {
            if self.policy.push(self.pe, task, self.now).is_err() {
                self.error = Some(AccelError::QueueFull { pe: self.pe });
            }
        } else {
            // Heterogeneous workers: hand the task to a supporting PE over
            // the intra-tile bus.
            let at = self.now + self.cycles(self.cfg.costs.net_hop_cycles);
            self.out_spawns.push((at, task));
        }
    }

    fn send_arg(&mut self, k: Continuation, value: u64) {
        if self.error.is_some() {
            return;
        }
        self.now += self.cycles(self.cfg.costs.send_arg_cycles);
        self.args_sent += 1;
        let remote = match k {
            Continuation::Host { .. } => true,
            Continuation::PStore { tile, .. } => tile as usize != self.tile,
        };
        let deliver = if remote {
            self.now + self.cycles(self.cfg.costs.net_hop_cycles)
        } else {
            self.now
        };
        self.out_args.push((deliver, k, value));
    }

    fn make_successor_with(
        &mut self,
        ty: TaskTypeId,
        k: Continuation,
        join: u8,
        preset: &[(u8, u64)],
    ) -> Continuation {
        if self.error.is_some() {
            return Continuation::host((HOST_SLOTS - 1) as u8);
        }
        self.now += self.cycles(self.cfg.costs.successor_cycles);
        self.successors += 1;
        let mut pending = PendingTask::new(ty, k, join).with_id(self.alloc_task_id());
        for &(slot, value) in preset {
            pending = pending.preset(slot, value);
        }
        // Allocate locally; overflow to other tiles over the network. On a
        // cluster the probe order visits the same chip's tiles before
        // spilling to remote chips (identical to the flat order at 1 chip).
        let tiles = self.pstores.len();
        let tpc = self.cfg.tiles_per_chip().max(1);
        let chip_base = (self.tile / tpc) * tpc;
        for probe in 0..tiles {
            let t = if probe < tpc {
                chip_base + (self.tile - chip_base + probe) % tpc
            } else {
                (chip_base + probe) % tiles
            };
            match self.pstores[t].alloc(pending) {
                Ok(Some(entry)) => {
                    if probe > 0 {
                        self.now += self.cycles(self.cfg.costs.net_hop_cycles);
                    }
                    self.trace.emit(
                        self.now,
                        TraceEvent::PStoreAlloc {
                            tile: t as u32,
                            occupancy: self.pstores[t].occupancy() as u32,
                        },
                    );
                    return Continuation::pstore(t as u16, entry, 0);
                }
                Ok(None) => {} // tile full; probe the next one
                Err(source) => {
                    self.error = Some(AccelError::PStoreCorrupt { tile: t, source });
                    return Continuation::host((HOST_SLOTS - 1) as u8);
                }
            }
        }
        self.error = Some(AccelError::PStoreFull { tile: self.tile });
        Continuation::host((HOST_SLOTS - 1) as u8)
    }

    timed_memory_path!();

    fn mem(&mut self) -> &mut Memory {
        self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AccelConfig, ClusterConfig};

    const FIB: TaskTypeId = TaskTypeId(0);
    const SUM: TaskTypeId = TaskTypeId(1);

    struct FibWorker;
    impl Worker for FibWorker {
        fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
            let k = task.k;
            if task.ty == FIB {
                let n = task.args[0];
                ctx.compute(2);
                if n < 2 {
                    ctx.send_arg(k, n);
                } else {
                    let kk = ctx.make_successor(SUM, k, 2);
                    ctx.spawn(Task::new(FIB, kk.with_slot(1), &[n - 2]));
                    ctx.spawn(Task::new(FIB, kk.with_slot(0), &[n - 1]));
                }
            } else {
                ctx.compute(1);
                ctx.send_arg(k, task.args[0] + task.args[1]);
            }
        }
    }

    fn fib(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib(n - 1) + fib(n - 2)
        }
    }

    fn run_fib(tiles: usize, pes: usize, n: u64) -> AccelResult {
        let mut engine = FlexEngine::new(AccelConfig::flex(tiles, pes), ExecProfile::scalar());
        engine
            .run(&mut FibWorker, Task::new(FIB, Continuation::host(0), &[n]))
            .expect("fib must complete")
    }

    #[test]
    fn single_pe_computes_fib() {
        let out = run_fib(1, 1, 12);
        assert_eq!(out.result, fib(12));
        assert!(out.elapsed > Time::ZERO);
        assert!(out.metrics.get("accel.tasks") > 100);
    }

    #[test]
    fn multi_pe_same_answer_and_faster() {
        let n = 16;
        let t1 = run_fib(1, 1, n);
        let t8 = run_fib(2, 4, n);
        assert_eq!(t1.result, fib(n));
        assert_eq!(t8.result, fib(n));
        assert!(
            t8.elapsed < t1.elapsed,
            "8 PEs ({}) must beat 1 PE ({})",
            t8.elapsed,
            t1.elapsed
        );
        assert!(t8.metrics.get("accel.steal_hits") > 0, "work must migrate");
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_fib(2, 2, 14);
        let b = run_fib(2, 2, 14);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.result, b.result);
        assert_eq!(
            a.metrics.get("accel.steal_attempts"),
            b.metrics.get("accel.steal_attempts")
        );
    }

    #[test]
    fn space_bound_holds() {
        // S_P <= S_1 * P (Section II-C): measure S_1 with the serial
        // executor, then check the parallel queue peaks.
        let n = 14;
        let mut serial = pxl_model::SerialExecutor::new();
        let _ = serial
            .run(&mut FibWorker, Task::new(FIB, Continuation::host(0), &[n]))
            .unwrap();
        let s1 = serial.stats().s1() as u64;
        let p = 8u64;
        let out = run_fib(2, 4, n);
        let s_p =
            out.metrics.get("accel.queue_peak_sum") + out.metrics.get("accel.pstore_peak_sum");
        assert!(
            s_p <= s1 * p,
            "space bound violated: S_P={s_p} > S_1*P={}",
            s1 * p
        );
    }

    #[test]
    fn queue_overflow_is_reported() {
        let mut cfg = AccelConfig::flex(1, 1);
        cfg.task_queue_entries = 2;
        let mut engine = FlexEngine::new(cfg, ExecProfile::scalar());
        // fib(16) needs more than 2 queue slots on one PE.
        let err = engine
            .run(&mut FibWorker, Task::new(FIB, Continuation::host(0), &[16]))
            .unwrap_err();
        assert!(matches!(err, AccelError::QueueFull { .. }), "got {err}");
    }

    #[test]
    fn pstore_overflow_is_reported() {
        let mut cfg = AccelConfig::flex(1, 2);
        cfg.pstore_entries = 2;
        let mut engine = FlexEngine::new(cfg, ExecProfile::scalar());
        let err = engine
            .run(&mut FibWorker, Task::new(FIB, Continuation::host(0), &[18]))
            .unwrap_err();
        assert!(matches!(err, AccelError::PStoreFull { .. }), "got {err}");
    }

    struct LeakyWorker;
    impl Worker for LeakyWorker {
        fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
            let _ = ctx.make_successor(SUM, task.k, 2);
        }
    }

    #[test]
    fn leaked_pending_is_reported() {
        let mut engine = FlexEngine::new(AccelConfig::flex(1, 1), ExecProfile::scalar());
        let err = engine
            .run(&mut LeakyWorker, Task::new(FIB, Continuation::host(0), &[]))
            .unwrap_err();
        assert_eq!(err, AccelError::LeakedPending { count: 1 });
    }

    #[test]
    fn memory_traffic_flows_through_hierarchy() {
        struct MemWorker;
        impl Worker for MemWorker {
            fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
                let mut sum = 0u64;
                for i in 0..64u64 {
                    sum += ctx.read_u32(0x1000 + 4 * i) as u64;
                }
                ctx.send_arg(task.k, sum);
            }
        }
        let mut engine = FlexEngine::new(AccelConfig::flex(1, 1), ExecProfile::scalar());
        for i in 0..64u64 {
            engine.mem_mut().write_u32(0x1000 + 4 * i, i as u32);
        }
        let out = engine
            .run(&mut MemWorker, Task::new(FIB, Continuation::host(0), &[]))
            .unwrap();
        assert_eq!(out.result, (0..64).sum::<u64>());
        assert!(out.metrics.get("mem.l1_misses") >= 1);
        assert!(
            out.metrics.get("mem.l1_hits") > 32,
            "strided reads must hit"
        );
    }

    #[test]
    fn heterogeneous_workers_compute_fib() {
        // The Section III-A extension: PE slots 0-2 process only FIB, slot 3
        // only SUM. Tasks route to supporting PEs; results stay golden.
        let mut cfg = AccelConfig::flex(2, 4);
        cfg.pe_task_types = Some(vec![0b01, 0b01, 0b01, 0b10]);
        let mut engine = FlexEngine::new(cfg, ExecProfile::scalar());
        let out = engine
            .run(&mut FibWorker, Task::new(FIB, Continuation::host(0), &[14]))
            .unwrap();
        assert_eq!(out.result, fib(14));
        // SUM-only PEs (slots 3 and 7) must have executed all the SUM tasks
        // and FIB PEs none of them; per-PE counters let us check the split.
        let sum_pe_tasks = out.metrics.get("pe3.tasks") + out.metrics.get("pe7.tasks");
        assert!(sum_pe_tasks > 0, "SUM slots must execute the join tasks");
    }

    #[test]
    fn heterogeneous_config_is_validated() {
        let mut cfg = AccelConfig::flex(1, 4);
        cfg.pe_task_types = Some(vec![0b01, 0b01]); // wrong length
        assert!(cfg.validate().is_err());
        let mut cfg = AccelConfig::flex(1, 2);
        cfg.pe_task_types = Some(vec![0b01, 0]); // empty mask
        assert!(cfg.validate().is_err());
        let mut cfg = AccelConfig::flex(1, 2);
        cfg.pe_task_types = Some(vec![0b01, 0b10]);
        assert!(cfg.validate().is_ok());
        assert!(cfg.pe_supports(0, FIB));
        assert!(!cfg.pe_supports(0, SUM));
        assert!(cfg.pe_supports(1, SUM));
    }

    #[test]
    fn unsupported_task_type_is_an_error_not_a_hang() {
        // No PE supports SUM: the first join completion must error out.
        let mut cfg = AccelConfig::flex(1, 2);
        cfg.pe_task_types = Some(vec![0b01, 0b01]);
        let mut engine = FlexEngine::new(cfg, ExecProfile::scalar());
        let err = engine
            .run(&mut FibWorker, Task::new(FIB, Continuation::host(0), &[6]))
            .unwrap_err();
        assert!(matches!(err, AccelError::Unsupported(_)), "got {err}");
    }

    #[test]
    fn central_engine_computes_fib() {
        let mut engine = CentralEngine::new(AccelConfig::central(2, 4), ExecProfile::scalar());
        let out = engine
            .run(&mut FibWorker, Task::new(FIB, Continuation::host(0), &[14]))
            .expect("central fib must complete");
        assert_eq!(out.result, fib(14));
        assert!(out.metrics.get("accel.tasks") > 100);
        // With no per-PE storage every spawn lands in the global queue and
        // can only leave through an acquisition (greedy-routed join tasks
        // may bypass it while their PE is idle).
        assert!(out.metrics.get("accel.steal_hits") >= out.metrics.get("accel.spawns"));
    }

    #[test]
    fn central_queue_contention_costs_against_flex() {
        // Same cost model, same workload, 8 PEs: the single-ported global
        // queue must not beat distributed stealing.
        let flex = run_fib(2, 4, 15);
        let mut engine = CentralEngine::new(AccelConfig::central(2, 4), ExecProfile::scalar());
        let central = engine
            .run(&mut FibWorker, Task::new(FIB, Continuation::host(0), &[15]))
            .unwrap();
        assert_eq!(central.result, flex.result);
        assert!(
            central.elapsed >= flex.elapsed,
            "central ({}) must not beat flex ({})",
            central.elapsed,
            flex.elapsed
        );
    }

    #[test]
    fn engines_reject_mismatched_arch() {
        let err = CentralEngine::try_new(AccelConfig::flex(1, 1), ExecProfile::scalar())
            .expect_err("flex config must not drive the central engine");
        assert!(matches!(err, AccelError::InvalidConfig(_)), "got {err}");
        let err = FlexEngine::try_new(AccelConfig::central(1, 1), ExecProfile::scalar())
            .expect_err("central config must not drive the flex engine");
        assert!(matches!(err, AccelError::InvalidConfig(_)), "got {err}");
    }

    #[test]
    fn faster_profile_reduces_elapsed_time() {
        let run = |accel_rate: f64| {
            let mut engine =
                FlexEngine::new(AccelConfig::flex(1, 1), ExecProfile::new(accel_rate, 1.0));
            engine
                .run(&mut FibWorker, Task::new(FIB, Continuation::host(0), &[14]))
                .unwrap()
                .elapsed
        };
        assert!(run(8.0) < run(1.0));
    }

    /// The checkpoint determinism gate at engine level: pause mid-run,
    /// snapshot through the JSON wire format, restore into a freshly built
    /// engine, and finish both legs. The paused original, the restored
    /// engine, and an uninterrupted reference must agree byte-for-byte on
    /// result, elapsed time, metrics, and trace.
    fn assert_resume_identical_on<P: SchedulingPolicy>(mk_cfg: impl Fn() -> AccelConfig, n: u64) {
        let root = || Task::new(FIB, Continuation::host(0), &[n]);
        let reference = {
            let mut engine = FabricEngine::<P>::new(mk_cfg(), ExecProfile::scalar());
            engine.run(&mut FibWorker, root()).expect("reference run")
        };
        let pause = Time::from_ps(reference.elapsed.as_ps() / 2);

        let mut paused = FabricEngine::<P>::new(mk_cfg(), ExecProfile::scalar());
        paused.launch(root());
        match paused.run_until(&mut FibWorker, Some(pause)).unwrap() {
            RunStatus::Paused { at } => assert_eq!(at, pause),
            RunStatus::Finished(_) => panic!("fib must still be in flight at {pause}"),
        }
        let blob = paused.snapshot().to_json();
        let snap = Snapshot::from_json(&blob).expect("snapshot survives its wire format");

        let mut restored = FabricEngine::<P>::new(mk_cfg(), ExecProfile::scalar());
        restored
            .restore(&snap)
            .expect("restore into a fresh engine");

        let finish = |engine: &mut FabricEngine<P>| match engine.run_until(&mut FibWorker, None) {
            Ok(RunStatus::Finished(out)) => out,
            Ok(RunStatus::Paused { .. }) => unreachable!("no pause requested"),
            Err(e) => panic!("resumed leg failed: {e}"),
        };
        let a = finish(&mut paused);
        let b = finish(&mut restored);
        for (label, out) in [("paused", &a), ("restored", &b)] {
            assert_eq!(out.result, reference.result, "{label} result");
            assert_eq!(out.elapsed, reference.elapsed, "{label} elapsed");
            assert_eq!(
                out.metrics.to_json(),
                reference.metrics.to_json(),
                "{label} metrics"
            );
            assert_eq!(
                out.trace.to_jsonl(),
                reference.trace.to_jsonl(),
                "{label} trace"
            );
        }
    }

    fn assert_resume_identical(mk_cfg: impl Fn() -> AccelConfig, n: u64) {
        assert_resume_identical_on::<FlexPolicy>(mk_cfg, n);
    }

    #[test]
    fn snapshot_restore_resumes_byte_identically() {
        assert_resume_identical(|| AccelConfig::flex(2, 2), 14);
    }

    #[test]
    fn snapshot_restore_holds_under_faults() {
        assert_resume_identical(
            || {
                let mut cfg = AccelConfig::flex(2, 4);
                cfg.fault_plan = Some(
                    FaultPlan::new(0xF01D)
                        .kill_pe(3, Time::from_ns(400))
                        .drop_messages(NetClass::Arg, Time::ZERO, Time::from_us(2), 80, 6)
                        .corrupt_pstore(1, Time::from_ns(900), 0xFF),
                );
                cfg
            },
            15,
        );
    }

    #[test]
    fn restore_rejects_mismatched_shape_and_engine() {
        let mut small = FlexEngine::new(AccelConfig::flex(1, 1), ExecProfile::scalar());
        small.launch(Task::new(FIB, Continuation::host(0), &[8]));
        let snap = small.snapshot();

        // Same family, different shape: the restore must fail loudly rather
        // than resume into a structurally different fabric.
        let mut other = FlexEngine::new(AccelConfig::flex(2, 4), ExecProfile::scalar());
        let err = other.restore(&snap).expect_err("shape mismatch");
        assert!(matches!(err, SnapshotError::Malformed(_)), "got {err}");

        // Different engine family entirely.
        let mut central = CentralEngine::new(AccelConfig::central(1, 1), ExecProfile::scalar());
        let err = central.restore(&snap).expect_err("engine mismatch");
        assert!(
            matches!(err, SnapshotError::EngineMismatch { .. }),
            "got {err}"
        );
    }

    fn cluster_cfg(tiles: usize, pes: usize, chips: usize) -> AccelConfig {
        let mut cfg = AccelConfig::flex(tiles, pes);
        cfg.cluster = Some(ClusterConfig::new(chips));
        cfg
    }

    #[test]
    fn hier_engine_computes_fib_across_chips() {
        let mut engine = HierEngine::new(cluster_cfg(4, 2, 2), ExecProfile::scalar());
        let out = engine
            .run(&mut FibWorker, Task::new(FIB, Continuation::host(0), &[16]))
            .expect("clustered fib must complete");
        assert_eq!(out.result, fib(16));
        // The cluster actually used the link: inter-chip traffic is
        // metered, and both chips executed tasks.
        assert!(out.metrics.get("link.msgs") > 0, "no link traffic");
        let chip0: u64 = (0..4)
            .map(|pe| out.metrics.get(&format!("pe{pe}.tasks")))
            .sum();
        let chip1: u64 = (4..8)
            .map(|pe| out.metrics.get(&format!("pe{pe}.tasks")))
            .sum();
        assert!(chip0 > 0 && chip1 > 0, "both chips must run tasks");
    }

    #[test]
    fn cluster_runs_are_deterministic() {
        let run = || {
            let mut cfg = cluster_cfg(4, 2, 2);
            cfg.trace_capacity = 1 << 14;
            let mut engine = HierEngine::new(cfg, ExecProfile::scalar());
            engine
                .run(&mut FibWorker, Task::new(FIB, Continuation::host(0), &[15]))
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.result, b.result);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.metrics.to_json(), b.metrics.to_json());
        assert_eq!(a.trace.to_jsonl(), b.trace.to_jsonl());
    }

    #[test]
    fn hierarchical_stealing_crosses_the_link_less_than_flat() {
        // Same 2-chip fabric, same workload: the hierarchical policy's
        // intra-chip-first victim draws must move fewer steal messages over
        // the inter-chip link than the naive flat baseline.
        let flat = {
            let mut cfg = cluster_cfg(4, 2, 2);
            cfg.cluster = Some(ClusterConfig::new(2).flat());
            let mut engine = FlexEngine::new(cfg, ExecProfile::scalar());
            engine
                .run(&mut FibWorker, Task::new(FIB, Continuation::host(0), &[16]))
                .unwrap()
        };
        let hier = {
            let mut engine = HierEngine::new(cluster_cfg(4, 2, 2), ExecProfile::scalar());
            engine
                .run(&mut FibWorker, Task::new(FIB, Continuation::host(0), &[16]))
                .unwrap()
        };
        assert_eq!(flat.result, hier.result);
        assert!(
            hier.metrics.get("link.steal_msgs") < flat.metrics.get("link.steal_msgs"),
            "hier {} vs flat {} cross-chip steal messages",
            hier.metrics.get("link.steal_msgs"),
            flat.metrics.get("link.steal_msgs"),
        );
    }

    #[test]
    fn link_occupancy_serializes_and_slows_the_run() {
        let run = |occupancy_cycles: u64| {
            let mut cfg = AccelConfig::flex(4, 2);
            cfg.cluster = Some(ClusterConfig::new(2).flat().with_link(64, occupancy_cycles));
            let mut engine = FlexEngine::new(cfg, ExecProfile::scalar());
            engine
                .run(&mut FibWorker, Task::new(FIB, Continuation::host(0), &[15]))
                .unwrap()
        };
        let fast = run(1);
        let slow = run(512);
        assert_eq!(fast.result, slow.result);
        assert!(
            slow.elapsed > fast.elapsed,
            "choking link bandwidth must cost time ({} vs {})",
            slow.elapsed,
            fast.elapsed
        );
        assert!(
            slow.metrics.get("link.stall_ps") > fast.metrics.get("link.stall_ps"),
            "bandwidth pressure must surface as link stall time"
        );
    }

    #[test]
    fn cluster_snapshot_restore_resumes_byte_identically() {
        assert_resume_identical_on::<HierPolicy>(|| cluster_cfg(4, 2, 2), 15);
        // The flat baseline on a cluster snapshots link state through the
        // stock Flex policy path.
        assert_resume_identical_on::<FlexPolicy>(
            || {
                let mut cfg = AccelConfig::flex(4, 2);
                cfg.cluster = Some(ClusterConfig::new(2).flat());
                cfg
            },
            15,
        );
    }

    #[test]
    fn cluster_snapshots_are_not_portable_to_single_chip_engines() {
        let mut clustered = HierEngine::new(cluster_cfg(2, 2, 2), ExecProfile::scalar());
        clustered.launch(Task::new(FIB, Continuation::host(0), &[10]));
        let _ = clustered
            .run_until(&mut FibWorker, Some(Time::from_ns(50)))
            .unwrap();
        let snap = clustered.snapshot();
        // Same policy family, no cluster: the link payload must be refused.
        let mut single = HierEngine::new(
            {
                let mut cfg = AccelConfig::flex(2, 2);
                cfg.cluster = Some(ClusterConfig::new(1));
                cfg
            },
            ExecProfile::scalar(),
        );
        let err = single.restore(&snap).expect_err("link state mismatch");
        assert!(matches!(err, SnapshotError::Malformed(_)), "got {err}");
    }
}
