//! The unified engine API: one trait over FlexArch, LiteArch and the
//! software baseline.
//!
//! Every execution engine in the framework — [`FlexEngine`], [`LiteEngine`]
//! and `pxl_cpu::CpuEngine` — models the same contract: set up inputs in
//! functional [`Memory`], run a workload, read back results and typed
//! [`Metrics`]. The [`Engine`] trait captures that contract so harnesses
//! (notably `pxl-bench`) can drive any engine through one generic code path
//! instead of per-engine glue.
//!
//! The engines differ in *what they run*: FlexArch and the CPU baseline
//! execute a dynamic task graph from a single root task, while LiteArch
//! needs a host-side driver that statically constructs one round of tasks
//! at a time. [`Workload`] expresses both shapes; an engine rejects the
//! shape it cannot execute with [`AccelError::Unsupported`], the same way
//! the hardware's missing P-Store rejects spawns.

use pxl_mem::Memory;
use pxl_model::{Task, Worker};
use pxl_sim::snapshot::{Snapshot, SnapshotError};
use pxl_sim::{Clock, Metrics, Time};

use crate::fabric::{AccelError, AccelResult, FabricEngine, RunStatus};
use crate::lite::{LiteDriver, LiteEngine};
use crate::policy::SchedulingPolicy;

/// Which engine family an [`Engine`] implementation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// FlexArch: continuation-passing hardware with work stealing.
    Flex,
    /// LiteArch: static data-parallel rounds.
    Lite,
    /// The centralized shared-queue ablation of FlexArch.
    Central,
    /// FlexArch with hierarchical (intra-chip-first) work stealing on a
    /// multi-chip cluster.
    Hier,
    /// The Cilk-style multicore software baseline.
    Cpu,
}

impl EngineKind {
    /// Short lower-case label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Flex => "flex",
            EngineKind::Lite => "lite",
            EngineKind::Central => "central",
            EngineKind::Hier => "hier",
            EngineKind::Cpu => "cpu",
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A workload an [`Engine`] can be asked to run.
///
/// The lifetime ties the borrowed worker (and driver) to the duration of
/// the `run` call; engines never retain them.
pub enum Workload<'a> {
    /// A dynamic task graph grown from `root` by `worker` (FlexArch, CPU).
    Dynamic {
        /// Executes each task functionally and reports costs.
        worker: &'a mut dyn Worker,
        /// The root task, typically continuing into host slot 0.
        root: Task,
    },
    /// Host-driven rounds of statically distributed tasks (LiteArch).
    Rounds {
        /// Executes each task functionally and reports costs.
        worker: &'a mut dyn Worker,
        /// Constructs each round until it returns `None`.
        driver: &'a mut dyn LiteDriver,
    },
}

impl<'a> Workload<'a> {
    /// A dynamic task-graph workload.
    pub fn dynamic(worker: &'a mut dyn Worker, root: Task) -> Self {
        Workload::Dynamic { worker, root }
    }

    /// A round-driven data-parallel workload.
    pub fn rounds(worker: &'a mut dyn Worker, driver: &'a mut dyn LiteDriver) -> Self {
        Workload::Rounds { worker, driver }
    }

    /// Short label of the workload shape, used in error messages.
    pub fn shape(&self) -> &'static str {
        match self {
            Workload::Dynamic { .. } => "dynamic task graph",
            Workload::Rounds { .. } => "host-driven rounds",
        }
    }
}

/// The common surface of every execution engine.
///
/// # Examples
///
/// Driving FlexArch through the trait object the way `pxl-bench` does:
///
/// ```
/// use pxl_arch::{AccelConfig, Engine, FlexEngine, Workload};
/// use pxl_model::{Continuation, ExecProfile, Task, TaskContext, TaskTypeId, Worker};
///
/// const DOUBLE: TaskTypeId = TaskTypeId(0);
/// struct Doubler;
/// impl Worker for Doubler {
///     fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
///         ctx.compute(1);
///         ctx.send_arg(task.k, task.args[0] * 2);
///     }
/// }
///
/// let mut engine: Box<dyn Engine> =
///     Box::new(FlexEngine::new(AccelConfig::flex(1, 2), ExecProfile::scalar()));
/// let mut worker = Doubler;
/// let root = Task::new(DOUBLE, Continuation::host(0), &[21]);
/// let out = engine.run(Workload::dynamic(&mut worker, root)).unwrap();
/// assert_eq!(out.result, 42);
/// assert!(out.metrics.get("accel.tasks") > 0);
/// ```
pub trait Engine: std::fmt::Debug {
    /// Which engine family this is.
    fn kind(&self) -> EngineKind;

    /// Number of processing elements or cores.
    fn units(&self) -> usize;

    /// The engine's logic clock — the domain in which callers express
    /// cycle counts (e.g. a checkpoint interval of N cycles pauses at
    /// `clock().cycles_to_time(N)` boundaries).
    fn clock(&self) -> Clock;

    /// Shared access to functional memory for output checking.
    fn memory(&self) -> &Memory;

    /// Mutable access to functional memory for input setup.
    fn mem_mut(&mut self) -> &mut Memory;

    /// The engine's metrics registry. Fully aggregated metrics are moved
    /// into [`AccelResult::metrics`] when `run` returns; this accessor
    /// exposes whatever the engine currently holds.
    fn metrics(&self) -> &Metrics;

    /// Value delivered to a host result register, if any.
    fn host_result(&self, slot: u8) -> Option<u64>;

    /// Runs `workload` to completion. Call once per engine.
    ///
    /// # Errors
    ///
    /// [`AccelError::Unsupported`] when the workload shape does not match
    /// the engine (e.g. rounds on FlexArch), plus every error the concrete
    /// engine's own run path can produce.
    fn run(&mut self, workload: Workload<'_>) -> Result<AccelResult, AccelError>;

    /// Runs one leg of `workload`: launches on the first call (a no-op on
    /// an engine restored from a snapshot) and advances until the
    /// computation drains or, when `pause_at` is given, until the next
    /// schedulable step lies beyond that boundary with work still
    /// outstanding. Legs compose — keep calling with an equivalent workload
    /// until [`RunStatus::Finished`]; a [`RunStatus::Paused`] engine is at
    /// a deterministic boundary where [`Engine::snapshot`] may be taken.
    ///
    /// # Errors
    ///
    /// As [`Engine::run`].
    fn run_until(
        &mut self,
        workload: Workload<'_>,
        pause_at: Option<Time>,
    ) -> Result<RunStatus, AccelError>;

    /// Serializes the engine's complete mutable simulation state into a
    /// versioned, checksummed [`Snapshot`]. Capture at construction time or
    /// at a [`RunStatus::Paused`] boundary; restoring into a fresh engine
    /// built from the same configuration resumes byte-identically to an
    /// uninterrupted run (see `docs/checkpoint.md`).
    fn snapshot(&self) -> Snapshot;

    /// Overwrites the engine's mutable state with a snapshot captured by
    /// [`Engine::snapshot`] on an identically configured engine.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::EngineMismatch`] for a snapshot from a different
    /// engine family, [`SnapshotError::Malformed`] when the payload does
    /// not describe this configuration.
    fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError>;
}

impl<P: SchedulingPolicy> Engine for FabricEngine<P> {
    fn kind(&self) -> EngineKind {
        self.policy.kind()
    }

    fn units(&self) -> usize {
        self.config().num_pes()
    }

    fn clock(&self) -> Clock {
        self.config().clock.clone()
    }

    fn memory(&self) -> &Memory {
        FabricEngine::memory(self)
    }

    fn mem_mut(&mut self) -> &mut Memory {
        FabricEngine::mem_mut(self)
    }

    fn metrics(&self) -> &Metrics {
        FabricEngine::metrics(self)
    }

    fn host_result(&self, slot: u8) -> Option<u64> {
        FabricEngine::host_result(self, slot)
    }

    fn run(&mut self, workload: Workload<'_>) -> Result<AccelResult, AccelError> {
        match workload {
            Workload::Dynamic { worker, root } => FabricEngine::run(self, worker, root),
            other => Err(AccelError::Unsupported(format!(
                "{} runs dynamic task graphs, not {}",
                self.policy.arch().name(),
                other.shape()
            ))),
        }
    }

    fn run_until(
        &mut self,
        workload: Workload<'_>,
        pause_at: Option<Time>,
    ) -> Result<RunStatus, AccelError> {
        match workload {
            Workload::Dynamic { worker, root } => {
                FabricEngine::launch(self, root);
                FabricEngine::run_until(self, worker, pause_at)
            }
            other => Err(AccelError::Unsupported(format!(
                "{} runs dynamic task graphs, not {}",
                self.policy.arch().name(),
                other.shape()
            ))),
        }
    }

    fn snapshot(&self) -> Snapshot {
        FabricEngine::snapshot(self)
    }

    fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        FabricEngine::restore(self, snap)
    }
}

impl Engine for LiteEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Lite
    }

    fn units(&self) -> usize {
        self.config().num_pes()
    }

    fn clock(&self) -> Clock {
        self.config().clock.clone()
    }

    fn memory(&self) -> &Memory {
        LiteEngine::memory(self)
    }

    fn mem_mut(&mut self) -> &mut Memory {
        LiteEngine::mem_mut(self)
    }

    fn metrics(&self) -> &Metrics {
        LiteEngine::metrics(self)
    }

    fn host_result(&self, slot: u8) -> Option<u64> {
        LiteEngine::host_result(self, slot)
    }

    fn run(&mut self, workload: Workload<'_>) -> Result<AccelResult, AccelError> {
        match workload {
            Workload::Rounds { worker, driver } => LiteEngine::run(self, worker, driver),
            other => Err(AccelError::Unsupported(format!(
                "LiteArch runs host-driven rounds, not {}",
                other.shape()
            ))),
        }
    }

    fn run_until(
        &mut self,
        workload: Workload<'_>,
        pause_at: Option<Time>,
    ) -> Result<RunStatus, AccelError> {
        match workload {
            Workload::Rounds { worker, driver } => {
                LiteEngine::run_until(self, worker, driver, pause_at)
            }
            other => Err(AccelError::Unsupported(format!(
                "LiteArch runs host-driven rounds, not {}",
                other.shape()
            ))),
        }
    }

    fn snapshot(&self) -> Snapshot {
        LiteEngine::snapshot(self)
    }

    fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        LiteEngine::restore(self, snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AccelConfig;
    use crate::fabric::{CentralEngine, FlexEngine};
    use pxl_model::{Continuation, ExecProfile, Task, TaskContext, TaskTypeId};

    const LEAF: TaskTypeId = TaskTypeId(0);

    struct Doubler;
    impl Worker for Doubler {
        fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
            ctx.compute(1);
            ctx.send_arg(task.k, task.args[0] * 2);
        }
    }

    #[test]
    fn flex_runs_dynamic_and_rejects_rounds() {
        let mut engine = FlexEngine::new(AccelConfig::flex(1, 2), ExecProfile::scalar());
        let dyn_engine: &mut dyn Engine = &mut engine;
        assert_eq!(dyn_engine.kind(), EngineKind::Flex);
        assert_eq!(dyn_engine.units(), 2);
        let mut worker = Doubler;
        let root = Task::new(LEAF, Continuation::host(0), &[5]);
        let out = dyn_engine
            .run(Workload::dynamic(&mut worker, root))
            .unwrap();
        assert_eq!(out.result, 10);
        assert_eq!(dyn_engine.host_result(0), Some(10));

        let mut engine = FlexEngine::new(AccelConfig::flex(1, 2), ExecProfile::scalar());
        let mut worker = Doubler;
        let mut driver = |_: &mut Memory, _: usize| None;
        let err = Engine::run(&mut engine, Workload::rounds(&mut worker, &mut driver)).unwrap_err();
        assert!(matches!(err, AccelError::Unsupported(_)), "got {err}");
    }

    #[test]
    fn lite_runs_rounds_and_rejects_dynamic() {
        let mut engine = LiteEngine::new(AccelConfig::lite(1, 2), ExecProfile::scalar());
        let dyn_engine: &mut dyn Engine = &mut engine;
        assert_eq!(dyn_engine.kind(), EngineKind::Lite);
        let mut worker = Doubler;
        let mut driver = |_: &mut Memory, round: usize| {
            (round == 0).then(|| vec![Task::new(LEAF, Continuation::host(0), &[4])])
        };
        let out = dyn_engine
            .run(Workload::rounds(&mut worker, &mut driver))
            .unwrap();
        assert_eq!(out.result, 8);

        let mut engine = LiteEngine::new(AccelConfig::lite(1, 2), ExecProfile::scalar());
        let mut worker = Doubler;
        let err = Engine::run(
            &mut engine,
            Workload::dynamic(&mut worker, Task::new(LEAF, Continuation::host(0), &[1])),
        )
        .unwrap_err();
        assert!(matches!(err, AccelError::Unsupported(_)));
    }

    #[test]
    fn central_runs_dynamic_through_the_trait() {
        let mut engine = CentralEngine::new(AccelConfig::central(1, 2), ExecProfile::scalar());
        let dyn_engine: &mut dyn Engine = &mut engine;
        assert_eq!(dyn_engine.kind(), EngineKind::Central);
        let mut worker = Doubler;
        let root = Task::new(LEAF, Continuation::host(0), &[5]);
        let out = dyn_engine
            .run(Workload::dynamic(&mut worker, root))
            .unwrap();
        assert_eq!(out.result, 10);

        let mut engine = CentralEngine::new(AccelConfig::central(1, 2), ExecProfile::scalar());
        let mut worker = Doubler;
        let mut driver = |_: &mut Memory, _: usize| None;
        let err = Engine::run(&mut engine, Workload::rounds(&mut worker, &mut driver)).unwrap_err();
        assert!(matches!(err, AccelError::Unsupported(_)), "got {err}");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(EngineKind::Flex.label(), "flex");
        assert_eq!(EngineKind::Lite.to_string(), "lite");
        assert_eq!(EngineKind::Central.label(), "central");
        assert_eq!(EngineKind::Hier.label(), "hier");
        assert_eq!(EngineKind::Cpu.label(), "cpu");
    }
}
