//! The ParallelXL accelerator architecture (Section III of the paper).
//!
//! An accelerator is a set of **tiles** connected by argument and
//! work-stealing networks; each tile contains several **processing
//! elements** (worker + task-management unit), a shared **P-Store** for
//! pending tasks, an argument/task **router**, and an L1 cache port into the
//! coherent memory hierarchy. Two tile variants are provided, matching the
//! paper's Table I:
//!
//! | Pattern               | [`ArchKind::Flex`] | [`ArchKind::Lite`] |
//! |-----------------------|--------------------|--------------------|
//! | Data-parallel         | yes                | yes                |
//! | Fork-join             | yes                | no                 |
//! | General task-parallel | yes                | no                 |
//! | Task scheduling       | work stealing      | static distribution|
//!
//! The crate simulates them at cycle granularity on top of the
//! [`pxl_sim`] event kernel and the [`pxl_mem`] hierarchy. Everything that
//! does not depend on task distribution — memory backend, P-Store joins,
//! fault injection/recovery, the quiescence watchdog, metrics and tracing,
//! the PE-side `TaskContext` — lives once in the [`fabric`] module; a
//! [`SchedulingPolicy`] supplies the distribution:
//!
//! * [`FlexEngine`] — the full continuation-passing machine: LIFO task
//!   deques, LFSR victim selection, steal-from-head, distributed P-Stores,
//!   greedy scheduling (a task made ready by the last arriving argument is
//!   routed back to the PE that produced it), and a host interface block
//!   that PEs steal root tasks from. A [`policy::FlexPolicy`] instantiation
//!   of the fabric.
//! * [`LiteEngine`] — the lightweight data-parallel machine: no P-Store, no
//!   steal network; the host statically distributes range chunks round-robin
//!   (the [`policy::StaticRoundPolicy`]) and synchronizes between rounds.
//! * [`CentralEngine`] — the centralized strawman: FlexArch's task model
//!   over one global ready queue whose single port serializes every
//!   acquisition. A [`policy::CentralPolicy`] instantiation, kept for the
//!   Flex-vs-Lite-vs-central ablation.
//!
//! See `docs/fabric.md` for the fabric/policy split and how to add a
//! policy.

pub mod api;
pub mod config;
pub mod deque;
pub mod fabric;
pub mod lite;
pub mod policy;
pub mod pstore;

pub use api::{Engine, EngineKind, Workload};
pub use config::{
    AccelConfig, ArchCosts, ArchKind, ClusterConfig, ConfigError, LinkTopology, LocalOrder,
    MemBackendKind, SchedPolicy, StealEnd, StealMode, VictimSelect,
};
pub use deque::TaskDeque;
pub use fabric::{
    record_injected, record_recovered, register_fault_metrics, AccelError, AccelResult,
    CentralEngine, FabricEngine, FlexEngine, HierEngine, RunStatus, Watchdog,
};
pub use lite::{LiteDriver, LiteEngine, RoundTasks};
pub use policy::{
    CentralPolicy, FlexPolicy, HierPolicy, RoundSlot, SchedulingPolicy, StaticRoundPolicy,
};
pub use pstore::{FillOutcome, PStore, PStoreError};
