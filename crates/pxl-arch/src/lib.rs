//! The ParallelXL accelerator architecture (Section III of the paper).
//!
//! An accelerator is a set of **tiles** connected by argument and
//! work-stealing networks; each tile contains several **processing
//! elements** (worker + task-management unit), a shared **P-Store** for
//! pending tasks, an argument/task **router**, and an L1 cache port into the
//! coherent memory hierarchy. Two tile variants are provided, matching the
//! paper's Table I:
//!
//! | Pattern               | [`ArchKind::Flex`] | [`ArchKind::Lite`] |
//! |-----------------------|--------------------|--------------------|
//! | Data-parallel         | yes                | yes                |
//! | Fork-join             | yes                | no                 |
//! | General task-parallel | yes                | no                 |
//! | Task scheduling       | work stealing      | static distribution|
//!
//! The crate simulates both at cycle granularity on top of the
//! [`pxl_sim`] event kernel and the [`pxl_mem`] hierarchy:
//!
//! * [`FlexEngine`] — the full continuation-passing machine: LIFO task
//!   deques, LFSR victim selection, steal-from-head, distributed P-Stores,
//!   greedy scheduling (a task made ready by the last arriving argument is
//!   routed back to the PE that produced it), and a host interface block
//!   that PEs steal root tasks from.
//! * [`LiteEngine`] — the lightweight data-parallel machine: no P-Store, no
//!   steal network; the host statically distributes range chunks round-robin
//!   and synchronizes between rounds.

pub mod api;
pub mod config;
pub mod deque;
pub mod engine;
pub mod lite;
pub mod pstore;

pub use api::{Engine, EngineKind, Workload};
pub use config::{
    AccelConfig, ArchCosts, ArchKind, ConfigError, LocalOrder, MemBackendKind, SchedPolicy,
    StealEnd, VictimSelect,
};
pub use deque::TaskDeque;
pub use engine::{AccelError, AccelResult, FlexEngine};
pub use lite::{LiteDriver, LiteEngine, RoundTasks};
pub use pstore::{FillOutcome, PStore, PStoreError};
