//! The pending-task store (P-Store).
//!
//! Each FlexArch tile has a P-Store holding tasks that are waiting for
//! arguments (Section III-A). "Its function is analogous to the reservation
//! stations in an out-of-order processor." The structure consists of a free
//! list, a join-counter array, a metadata array and argument arrays; here
//! one [`pxl_model::PendingTask`] per entry plays all of those roles. The
//! P-Store is *distributed*: one per tile, addressable from remote tiles
//! through the continuation's tile field.
//!
//! Protocol violations (an argument addressed to a freed entry, an
//! out-of-range slot) are *recoverable errors*, not panics: the fault
//! injector deliberately provokes them, and a simulated hardware bug must
//! surface as a failed run, never a crashed process. The store also models
//! an ECC scrubber: [`PStore::corrupt`] flips bits in a live entry's
//! argument words, and the next [`PStore::fill`] touching that entry
//! detects and repairs the damage before applying the new argument.

use pxl_model::{PendingTask, Task, MAX_ARGS, PENDING_WORDS};
use pxl_sim::json::JsonValue;

/// A protocol violation detected by the P-Store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PStoreError {
    /// An argument arrived for an entry outside the store.
    OutOfBounds {
        /// The offending entry index.
        entry: u32,
    },
    /// An argument arrived for a freed or never-allocated entry.
    DeadEntry {
        /// The offending entry index.
        entry: u32,
    },
    /// An argument named a slot past the argument array.
    BadSlot {
        /// The targeted entry.
        entry: u32,
        /// The out-of-range slot.
        slot: u8,
    },
    /// An allocation carried an impossible join counter.
    BadJoin {
        /// The rejected join counter.
        join: u8,
    },
}

impl std::fmt::Display for PStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PStoreError::OutOfBounds { entry } => {
                write!(f, "P-Store entry {entry} is out of bounds")
            }
            PStoreError::DeadEntry { entry } => {
                write!(f, "argument delivered to dead P-Store entry {entry}")
            }
            PStoreError::BadSlot { entry, slot } => {
                write!(f, "argument slot {slot} out of range for entry {entry}")
            }
            PStoreError::BadJoin { join } => {
                write!(f, "join counter {join} outside 1..={MAX_ARGS}")
            }
        }
    }
}

impl std::error::Error for PStoreError {}

/// Result of a successful [`PStore::fill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillOutcome {
    /// The completed task, when this argument was the last of the join.
    pub ready: Option<Task>,
    /// Whether the scrubber repaired injected corruption on the way in.
    pub repaired: bool,
}

/// One tile's pending-task storage.
///
/// # Examples
///
/// ```
/// use pxl_arch::PStore;
/// use pxl_model::{Continuation, PendingTask, TaskTypeId};
///
/// let mut ps = PStore::new(4);
/// let p = PendingTask::new(TaskTypeId(1), Continuation::host(0), 2);
/// let entry = ps.alloc(p).expect("store has space").expect("valid join");
/// assert!(ps.fill(entry, 0, 10).unwrap().ready.is_none());
/// let ready = ps.fill(entry, 1, 20).unwrap().ready.expect("join complete");
/// assert_eq!(ready.args[..2], [10, 20]);
/// assert_eq!(ps.occupancy(), 0); // entry freed on completion
/// // Filling the freed entry again is an error, not a panic.
/// assert!(ps.fill(entry, 0, 0).is_err());
/// ```
/// Storage is *lazy*: `entries`/`taint` only cover the high-water mark of
/// slots ever allocated, so an engine with the default 8192-entry stores
/// pays for the handful of slots a run actually touches, not megabytes of
/// zeroed arrays at construction. The eager equivalent's free list is
/// always `[capacity-1, ..., high_water]` (virgin slots, descending)
/// followed by the recycled LIFO stack, so `recycled` plus the high-water
/// mark represent it exactly — allocation order and snapshot bytes are
/// identical to the eager layout.
#[derive(Debug, Clone)]
pub struct PStore {
    entries: Vec<Option<PendingTask>>,
    /// Outstanding corruption per entry: the XOR mask the scrubber must
    /// undo on next access (0 = clean).
    taint: Vec<u64>,
    /// Freed slots below the high-water mark, in dealloc order; allocation
    /// pops its tail before touching a virgin slot.
    recycled: Vec<u32>,
    capacity: usize,
    peak: usize,
    total_allocs: u64,
    full_events: u64,
    repairs: u64,
}

impl PStore {
    /// Creates a P-Store with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        PStore {
            entries: Vec::new(),
            taint: Vec::new(),
            recycled: Vec::new(),
            capacity,
            peak: 0,
            total_allocs: 0,
            full_events: 0,
            repairs: 0,
        }
    }

    /// Number of live pending tasks.
    pub fn occupancy(&self) -> usize {
        self.entries.len() - self.recycled.len()
    }

    /// Peak number of simultaneously pending tasks.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Total successful allocations.
    pub fn total_allocs(&self) -> u64 {
        self.total_allocs
    }

    /// Number of allocation attempts rejected for lack of space.
    pub fn full_events(&self) -> u64 {
        self.full_events
    }

    /// Number of corrupted entries the scrubber has repaired.
    pub fn repairs(&self) -> u64 {
        self.repairs
    }

    /// Allocates an entry for `pending`, returning its index, `None` if
    /// the store is full.
    ///
    /// # Errors
    ///
    /// [`PStoreError::BadJoin`] if the pending task's join counter is
    /// outside `1..=MAX_ARGS` (allocation misuse: a ready task should be
    /// spawned, not parked).
    pub fn alloc(&mut self, pending: PendingTask) -> Result<Option<u32>, PStoreError> {
        if pending.join == 0 || pending.join as usize > MAX_ARGS {
            return Err(PStoreError::BadJoin { join: pending.join });
        }
        let slot = match self.recycled.pop() {
            Some(e) => {
                self.entries[e as usize] = Some(pending);
                self.taint[e as usize] = 0;
                Some(e)
            }
            None if self.entries.len() < self.capacity => {
                self.entries.push(Some(pending));
                self.taint.push(0);
                Some((self.entries.len() - 1) as u32)
            }
            None => None,
        };
        match slot {
            Some(e) => {
                self.total_allocs += 1;
                self.peak = self.peak.max(self.occupancy());
                Ok(Some(e))
            }
            None => {
                self.full_events += 1;
                Ok(None)
            }
        }
    }

    /// Delivers an argument to `slot` of `entry`, repairing any injected
    /// corruption first. When the join counter reaches zero the entry is
    /// deallocated and the ready task returned in the outcome.
    ///
    /// # Errors
    ///
    /// [`PStoreError`] on any protocol violation: an out-of-bounds or dead
    /// entry (the argument outlived its join), or an out-of-range slot.
    pub fn fill(&mut self, entry: u32, slot: u8, value: u64) -> Result<FillOutcome, PStoreError> {
        if entry as usize >= self.capacity {
            return Err(PStoreError::OutOfBounds { entry });
        }
        if slot as usize >= MAX_ARGS {
            return Err(PStoreError::BadSlot { entry, slot });
        }
        // A slot past the high-water mark was never allocated — dead, like
        // a freed one.
        let taint = match self.taint.get_mut(entry as usize) {
            Some(t) => std::mem::take(t),
            None => return Err(PStoreError::DeadEntry { entry }),
        };
        let cell = self.entries[entry as usize]
            .as_mut()
            .ok_or(PStoreError::DeadEntry { entry })?;
        let repaired = taint != 0;
        if repaired {
            // The ECC scrubber detects the upset on access and restores the
            // stored words (XOR masks are self-inverse).
            for arg in cell.args.iter_mut() {
                *arg ^= taint;
            }
            self.repairs += 1;
        }
        let ready = cell.fill(slot, value);
        if ready.is_some() {
            self.entries[entry as usize] = None;
            self.recycled.push(entry);
        }
        Ok(FillOutcome { ready, repaired })
    }

    /// Injects corruption: XORs `mask` into every argument word of the
    /// lowest-indexed live entry, returning that entry, or `None` when the
    /// store holds no live entry (nothing to corrupt). The damage is
    /// repaired by the scrubber on the entry's next [`PStore::fill`].
    pub fn corrupt(&mut self, mask: u64) -> Option<u32> {
        let (entry, cell) = self
            .entries
            .iter_mut()
            .enumerate()
            .find_map(|(i, c)| c.as_mut().map(|c| (i, c)))?;
        for arg in cell.args.iter_mut() {
            *arg ^= mask;
        }
        self.taint[entry] ^= mask;
        Some(entry as u32)
    }

    /// Whether `entry` currently carries unrepaired injected corruption.
    pub fn tainted(&self, entry: u32) -> bool {
        self.taint.get(entry as usize).is_some_and(|t| *t != 0)
    }

    /// The task instance id of the pending task in `entry`, or `None` when
    /// the entry is out of bounds or dead. Used by the tracer to label join
    /// events with the successor they feed.
    pub fn pending_id(&self, entry: u32) -> Option<u64> {
        self.entries
            .get(entry as usize)
            .and_then(|c| c.as_ref())
            .map(|c| c.id)
    }

    /// Serializes entries (word-encoded, empty array = free slot), taint
    /// masks, the free list (order matters: allocation pops its tail) and
    /// counters for engine snapshots. The wire format is the *eager*
    /// layout — `capacity`-length entry/taint arrays and a free list of
    /// virgin slots (descending) followed by the recycled stack — so
    /// snapshots are byte-identical to the pre-lazy encoding.
    pub fn state_to_json_value(&self) -> JsonValue {
        let entries = (0..self.capacity)
            .map(|i| match self.entries.get(i).and_then(Option::as_ref) {
                Some(p) => JsonValue::Array(
                    p.to_words()
                        .iter()
                        .map(|w| JsonValue::num_u64(*w))
                        .collect(),
                ),
                None => JsonValue::Array(Vec::new()),
            })
            .collect();
        let free = (self.entries.len()..self.capacity)
            .rev()
            .map(|e| e as u32)
            .chain(self.recycled.iter().copied())
            .map(|e| JsonValue::num_u64(e as u64))
            .collect();
        JsonValue::Object(vec![
            ("entries".to_owned(), JsonValue::Array(entries)),
            (
                "taint".to_owned(),
                JsonValue::Array(
                    (0..self.capacity)
                        .map(|i| JsonValue::num_u64(self.taint.get(i).copied().unwrap_or(0)))
                        .collect(),
                ),
            ),
            ("free".to_owned(), JsonValue::Array(free)),
            ("peak".to_owned(), JsonValue::num_u64(self.peak as u64)),
            (
                "total_allocs".to_owned(),
                JsonValue::num_u64(self.total_allocs),
            ),
            (
                "full_events".to_owned(),
                JsonValue::num_u64(self.full_events),
            ),
            ("repairs".to_owned(), JsonValue::num_u64(self.repairs)),
        ])
    }

    /// Replaces the store's contents with a state captured by
    /// [`PStore::state_to_json_value`]. The store keeps its configured
    /// capacity, which must match the snapshot's entry count.
    ///
    /// # Errors
    ///
    /// Returns a message when the state is malformed or was taken from a
    /// store of a different capacity.
    pub fn restore_state(&mut self, value: &JsonValue) -> Result<(), String> {
        let u64s = |key: &str| -> Result<Vec<u64>, String> {
            value
                .get(key)
                .and_then(JsonValue::as_array)
                .map(|a| a.iter().filter_map(JsonValue::as_u64).collect())
                .ok_or_else(|| format!("pstore state: missing array {key:?}"))
        };
        let counter = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("pstore state: missing counter {key:?}"))
        };
        let cells = value
            .get("entries")
            .and_then(JsonValue::as_array)
            .ok_or("pstore state: missing entries array")?;
        if cells.len() != self.capacity {
            return Err(format!(
                "pstore state holds {} entries, this store has {}",
                cells.len(),
                self.capacity
            ));
        }
        let mut entries = Vec::with_capacity(cells.len());
        for cell in cells {
            let words: Vec<u64> = cell
                .as_array()
                .map(|a| a.iter().filter_map(JsonValue::as_u64).collect())
                .ok_or("pstore state: entry is not an array")?;
            entries.push(match words.len() {
                0 => None,
                PENDING_WORDS => Some(PendingTask::from_words(&words)?),
                n => return Err(format!("pstore state: entry holds {n} words")),
            });
        }
        let mut taint = u64s("taint")?;
        if taint.len() != entries.len() {
            return Err("pstore state: taint length mismatch".to_owned());
        }
        let free: Vec<u32> = u64s("free")?
            .into_iter()
            .map(|e| {
                u32::try_from(e)
                    .ok()
                    .filter(|e| (*e as usize) < entries.len())
                    .ok_or_else(|| format!("pstore state: free entry {e} out of range"))
            })
            .collect::<Result<_, _>>()?;
        // Split the wire-format free list back into its two halves: the
        // descending virgin prefix `[capacity-1, ..., high_water]` and the
        // recycled stack after it. A well-formed snapshot always has this
        // shape (see `state_to_json_value`); anything else cannot have come
        // from a real store.
        let virgin = free
            .iter()
            .enumerate()
            .take_while(|&(i, &e)| e as usize == self.capacity - 1 - i)
            .count();
        let high_water = self.capacity - virgin;
        let recycled = free[virgin..].to_vec();
        if recycled.iter().any(|&e| e as usize >= high_water)
            || entries[high_water..].iter().any(Option::is_some)
            || taint[high_water..].iter().any(|&t| t != 0)
        {
            return Err(
                "pstore state: free list is not a virgin prefix + recycled stack".to_owned(),
            );
        }
        entries.truncate(high_water);
        taint.truncate(high_water);
        let peak = counter("peak")? as usize;
        let total_allocs = counter("total_allocs")?;
        let full_events = counter("full_events")?;
        let repairs = counter("repairs")?;
        self.entries = entries;
        self.taint = taint;
        self.recycled = recycled;
        self.peak = peak;
        self.total_allocs = total_allocs;
        self.full_events = full_events;
        self.repairs = repairs;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxl_model::{Continuation, TaskTypeId};

    fn pending(join: u8) -> PendingTask {
        PendingTask::new(TaskTypeId(7), Continuation::host(0), join)
    }

    fn must_alloc(ps: &mut PStore, join: u8) -> u32 {
        ps.alloc(pending(join)).unwrap().unwrap()
    }

    #[test]
    fn alloc_fill_free_cycle() {
        let mut ps = PStore::new(2);
        let a = must_alloc(&mut ps, 1);
        let b = must_alloc(&mut ps, 2);
        assert_ne!(a, b);
        assert_eq!(ps.occupancy(), 2);
        assert!(ps.alloc(pending(1)).unwrap().is_none(), "store is full");
        assert_eq!(ps.full_events(), 1);
        let ready = ps.fill(a, 0, 42).unwrap().ready.unwrap();
        assert_eq!(ready.args[0], 42);
        assert_eq!(ps.occupancy(), 1);
        // Freed entry is reusable.
        assert!(ps.alloc(pending(1)).unwrap().is_some());
    }

    #[test]
    fn peak_occupancy() {
        let mut ps = PStore::new(8);
        let ids: Vec<u32> = (0..5).map(|_| must_alloc(&mut ps, 1)).collect();
        for id in &ids {
            let _ = ps.fill(*id, 0, 0);
        }
        assert_eq!(ps.peak(), 5);
        assert_eq!(ps.total_allocs(), 5);
        assert_eq!(ps.occupancy(), 0);
    }

    #[test]
    fn partial_join_keeps_entry_live() {
        let mut ps = PStore::new(1);
        let e = must_alloc(&mut ps, 3);
        assert!(ps.fill(e, 0, 1).unwrap().ready.is_none());
        assert!(ps.fill(e, 2, 3).unwrap().ready.is_none());
        assert_eq!(ps.occupancy(), 1);
        let ready = ps.fill(e, 1, 2).unwrap().ready.unwrap();
        assert_eq!(ready.args[..3], [1, 2, 3]);
    }

    #[test]
    fn filling_freed_entry_is_a_recoverable_error() {
        let mut ps = PStore::new(1);
        let e = must_alloc(&mut ps, 1);
        assert!(ps.fill(e, 0, 0).is_ok());
        assert_eq!(ps.fill(e, 0, 0), Err(PStoreError::DeadEntry { entry: e }));
        // The store stays usable after the violation.
        assert!(ps.alloc(pending(1)).unwrap().is_some());
    }

    #[test]
    fn bad_addresses_are_recoverable_errors() {
        let mut ps = PStore::new(2);
        let e = must_alloc(&mut ps, 2);
        assert_eq!(ps.fill(9, 0, 0), Err(PStoreError::OutOfBounds { entry: 9 }));
        assert_eq!(
            ps.fill(e, MAX_ARGS as u8, 0),
            Err(PStoreError::BadSlot {
                entry: e,
                slot: MAX_ARGS as u8
            })
        );
        // Misuse left the entry intact.
        assert_eq!(ps.occupancy(), 1);
    }

    #[test]
    fn bad_join_is_rejected_at_alloc() {
        let mut ps = PStore::new(2);
        let mut p = pending(1);
        p.join = 0;
        assert_eq!(ps.alloc(p), Err(PStoreError::BadJoin { join: 0 }));
        let mut p = pending(1);
        p.join = (MAX_ARGS + 1) as u8;
        assert!(ps.alloc(p).is_err());
        assert_eq!(ps.occupancy(), 0, "rejected allocs hold no entry");
    }

    #[test]
    fn corruption_is_repaired_on_next_fill() {
        let mut ps = PStore::new(4);
        let e = must_alloc(&mut ps, 2);
        let _ = ps.fill(e, 0, 0xAAAA).unwrap();
        let hit = ps.corrupt(0xFF00).expect("a live entry exists");
        assert_eq!(hit, e);
        let out = ps.fill(e, 1, 0x5555).unwrap();
        assert!(out.repaired, "scrubber must flag the repair");
        let ready = out.ready.expect("join of two complete");
        assert_eq!(ready.args[..2], [0xAAAA, 0x5555], "values restored");
        assert_eq!(ps.repairs(), 1);
    }

    #[test]
    fn pending_id_tracks_live_entries() {
        let mut ps = PStore::new(2);
        let e = ps.alloc(pending(1).with_id(55)).unwrap().unwrap();
        assert_eq!(ps.pending_id(e), Some(55));
        let _ = ps.fill(e, 0, 0);
        assert_eq!(ps.pending_id(e), None, "freed entries have no id");
        assert_eq!(ps.pending_id(99), None, "out of bounds has no id");
    }

    #[test]
    fn state_round_trip_resumes_identically() {
        let mut a = PStore::new(4);
        let e0 = must_alloc(&mut a, 2);
        let e1 = must_alloc(&mut a, 1);
        let _ = a.fill(e0, 0, 7).unwrap();
        let _ = a.fill(e1, 0, 9).unwrap(); // frees e1
        a.corrupt(0xF0F0);
        let state = a.state_to_json_value();
        let mut b = PStore::new(4);
        b.restore_state(&state).unwrap();
        assert_eq!(b.occupancy(), a.occupancy());
        assert_eq!(b.tainted(e0), a.tainted(e0));
        // Identical future behavior: same allocation order, same repair.
        let (na, nb) = (must_alloc(&mut a, 1), must_alloc(&mut b, 1));
        assert_eq!(na, nb, "free-list order survives the round trip");
        let (oa, ob) = (a.fill(e0, 1, 3).unwrap(), b.fill(e0, 1, 3).unwrap());
        assert_eq!(oa, ob);
        assert!(ob.repaired, "taint mask survives the round trip");
        assert_eq!(ob.ready.unwrap().args[..2], [7, 3]);
        assert_eq!(b.repairs(), a.repairs());
        // Capacity mismatch is rejected.
        let mut wrong = PStore::new(8);
        assert!(wrong.restore_state(&state).unwrap_err().contains("entries"));
    }

    #[test]
    fn corrupting_an_empty_store_is_a_no_op() {
        let mut ps = PStore::new(2);
        assert_eq!(ps.corrupt(0xFF), None);
        assert_eq!(ps.repairs(), 0);
    }

    #[test]
    fn double_corruption_cancels_and_accumulates_correctly() {
        let mut ps = PStore::new(2);
        let e = must_alloc(&mut ps, 2);
        let _ = ps.fill(e, 0, 7).unwrap();
        ps.corrupt(0b1100);
        ps.corrupt(0b1010);
        let out = ps.fill(e, 1, 8).unwrap();
        assert!(out.repaired);
        assert_eq!(out.ready.unwrap().args[..2], [7, 8]);
    }
}
