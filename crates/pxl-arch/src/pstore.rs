//! The pending-task store (P-Store).
//!
//! Each FlexArch tile has a P-Store holding tasks that are waiting for
//! arguments (Section III-A). "Its function is analogous to the reservation
//! stations in an out-of-order processor." The structure consists of a free
//! list, a join-counter array, a metadata array and argument arrays; here
//! one [`pxl_model::PendingTask`] per entry plays all of those roles. The
//! P-Store is *distributed*: one per tile, addressable from remote tiles
//! through the continuation's tile field.

use pxl_model::{PendingTask, Task};

/// One tile's pending-task storage.
///
/// # Examples
///
/// ```
/// use pxl_arch::PStore;
/// use pxl_model::{Continuation, PendingTask, TaskTypeId};
///
/// let mut ps = PStore::new(4);
/// let p = PendingTask::new(TaskTypeId(1), Continuation::host(0), 2);
/// let entry = ps.alloc(p).expect("store has space");
/// assert!(ps.fill(entry, 0, 10).is_none());
/// let ready = ps.fill(entry, 1, 20).expect("join complete");
/// assert_eq!(ready.args[..2], [10, 20]);
/// assert_eq!(ps.occupancy(), 0); // entry freed on completion
/// ```
#[derive(Debug, Clone)]
pub struct PStore {
    entries: Vec<Option<PendingTask>>,
    free: Vec<u32>,
    peak: usize,
    total_allocs: u64,
    full_events: u64,
}

impl PStore {
    /// Creates a P-Store with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        PStore {
            entries: vec![None; capacity],
            free: (0..capacity as u32).rev().collect(),
            peak: 0,
            total_allocs: 0,
            full_events: 0,
        }
    }

    /// Number of live pending tasks.
    pub fn occupancy(&self) -> usize {
        self.entries.len() - self.free.len()
    }

    /// Peak number of simultaneously pending tasks.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Total successful allocations.
    pub fn total_allocs(&self) -> u64 {
        self.total_allocs
    }

    /// Number of allocation attempts rejected for lack of space.
    pub fn full_events(&self) -> u64 {
        self.full_events
    }

    /// Allocates an entry for `pending`, returning its index, or `None` if
    /// the store is full.
    pub fn alloc(&mut self, pending: PendingTask) -> Option<u32> {
        match self.free.pop() {
            Some(e) => {
                self.entries[e as usize] = Some(pending);
                self.total_allocs += 1;
                self.peak = self.peak.max(self.occupancy());
                Some(e)
            }
            None => {
                self.full_events += 1;
                None
            }
        }
    }

    /// Delivers an argument to `slot` of `entry`. When the join counter
    /// reaches zero the entry is deallocated and the ready task returned.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is not live (an argument arrived for a freed or
    /// never-allocated entry — a protocol violation).
    pub fn fill(&mut self, entry: u32, slot: u8, value: u64) -> Option<Task> {
        let cell = self.entries[entry as usize]
            .as_mut()
            .expect("argument delivered to a dead P-Store entry");
        let ready = cell.fill(slot, value);
        if ready.is_some() {
            self.entries[entry as usize] = None;
            self.free.push(entry);
        }
        ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxl_model::{Continuation, TaskTypeId};

    fn pending(join: u8) -> PendingTask {
        PendingTask::new(TaskTypeId(7), Continuation::host(0), join)
    }

    #[test]
    fn alloc_fill_free_cycle() {
        let mut ps = PStore::new(2);
        let a = ps.alloc(pending(1)).unwrap();
        let b = ps.alloc(pending(2)).unwrap();
        assert_ne!(a, b);
        assert_eq!(ps.occupancy(), 2);
        assert!(ps.alloc(pending(1)).is_none(), "store is full");
        assert_eq!(ps.full_events(), 1);
        let ready = ps.fill(a, 0, 42).unwrap();
        assert_eq!(ready.args[0], 42);
        assert_eq!(ps.occupancy(), 1);
        // Freed entry is reusable.
        assert!(ps.alloc(pending(1)).is_some());
    }

    #[test]
    fn peak_occupancy() {
        let mut ps = PStore::new(8);
        let ids: Vec<u32> = (0..5).map(|_| ps.alloc(pending(1)).unwrap()).collect();
        for id in &ids {
            let _ = ps.fill(*id, 0, 0);
        }
        assert_eq!(ps.peak(), 5);
        assert_eq!(ps.total_allocs(), 5);
        assert_eq!(ps.occupancy(), 0);
    }

    #[test]
    fn partial_join_keeps_entry_live() {
        let mut ps = PStore::new(1);
        let e = ps.alloc(pending(3)).unwrap();
        assert!(ps.fill(e, 0, 1).is_none());
        assert!(ps.fill(e, 2, 3).is_none());
        assert_eq!(ps.occupancy(), 1);
        let ready = ps.fill(e, 1, 2).unwrap();
        assert_eq!(ready.args[..3], [1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "dead P-Store entry")]
    fn filling_freed_entry_panics() {
        let mut ps = PStore::new(1);
        let e = ps.alloc(pending(1)).unwrap();
        let _ = ps.fill(e, 0, 0);
        let _ = ps.fill(e, 0, 0);
    }
}
