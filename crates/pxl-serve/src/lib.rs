//! Simulation-as-a-service: a job server over the canonical
//! [`RunSpec`](pxl_flow::RunSpec) API.
//!
//! Everything the workspace can run — simulations, design-space
//! evaluations, profiled runs — is one serializable spec, so it can also
//! be a *job*: submitted over a socket, queued fairly across tenants,
//! deduplicated by content address, and answered with a byte-stable
//! result payload. This crate provides the three layers:
//!
//! - [`protocol`]: the line-delimited JSON wire format — typed
//!   [`Request`]s, [`JobEvent`]s and [`ErrorCode`]s with exact JSON
//!   round-trips (built on `pxl_sim::json`, no external dependencies).
//! - [`sched`]: [`FairQueue`], deterministic round-robin fair-share
//!   queuing with per-tenant quotas — pure data, unit-testable.
//! - [`server`]/[`client`]: the threaded TCP [`Server`] (accept loop,
//!   dispatcher, `pxl_sim::pool::WorkerPool` simulation workers,
//!   content-addressed `ResultCache` dedup, graceful drain, JSONL job
//!   log) and the blocking [`Client`].
//!
//! # Example
//!
//! ```
//! use pxl_apps::Scale;
//! use pxl_dse::{DesignPoint, PointArch};
//! use pxl_flow::RunSpec;
//! use pxl_serve::{Client, JobEvent, JobKind, Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let spec = RunSpec::new("uts", Scale::Tiny, DesignPoint::accel(PointArch::Flex, 1, 2));
//! let job = client.submit("docs", JobKind::Sim, &spec).unwrap();
//! match client.wait(job).unwrap() {
//!     JobEvent::Done { result, .. } => assert!(result.kernel_ps > 0),
//!     other => panic!("unexpected {other:?}"),
//! }
//! client.drain().unwrap();
//! server.join();
//! ```

pub mod client;
pub mod protocol;
pub mod sched;
pub mod server;

pub use client::{Client, ClientError, StatusSnapshot};
pub use protocol::{
    measurement_from_json_value, measurement_to_json_value, ErrorCode, JobEvent, JobId, JobKind,
    JobStatus, Request, RequestError,
};
pub use sched::{FairQueue, QuotaExceeded};
pub use server::{cache_key, ServeSummary, Server, ServerConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use pxl_apps::Scale;
    use pxl_dse::{DesignPoint, PointArch};
    use pxl_flow::RunSpec;

    fn tiny_spec(bench: &str, pes: usize) -> RunSpec {
        RunSpec::new(
            bench,
            Scale::Tiny,
            DesignPoint::accel(PointArch::Flex, 1, pes),
        )
    }

    #[test]
    fn end_to_end_fair_share_dedup_and_drain() {
        let server = Server::start(ServerConfig {
            workers: 1,
            tenant_quota: 8,
            cache_path: None,
            job_log: None,
        })
        .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();

        // Pause so the queue fills before the single worker starts: the
        // dispatch order is then exactly FairQueue's deterministic
        // round-robin.
        assert!(client.pause().unwrap().paused);
        let spec_a = tiny_spec("uts", 2);
        let spec_b = tiny_spec("queens", 2);
        let a1 = client.submit("alice", JobKind::Sim, &spec_a).unwrap();
        let a2 = client.submit("alice", JobKind::Sim, &spec_a).unwrap();
        let b1 = client.submit("bob", JobKind::Sim, &spec_b).unwrap();
        assert!(!client.resume().unwrap().paused);

        // Alice flooded first, but bob's job must run between hers. The
        // terminal (done) event is the last per job, so once all three are
        // in, every running event has been seen too.
        let mut running_order = Vec::new();
        let mut finished = std::collections::HashMap::new();
        while finished.len() < 3 {
            let (event, raw) = client.next_event_raw().unwrap();
            match &event {
                JobEvent::Running { job } => running_order.push(*job),
                JobEvent::Done { job, .. } => {
                    finished.insert(*job, (event.clone(), raw));
                }
                JobEvent::Failed { job, error } => panic!("{job} failed: {error}"),
                _ => {}
            }
        }
        assert_eq!(running_order, vec![a1, b1, a2]);

        // a2 ran the same spec as a1: it must be a pure cache hit with a
        // byte-identical payload.
        let (done_a1, raw_a1) = finished.remove(&a1).unwrap();
        let (done_a2, raw_a2) = finished.remove(&a2).unwrap();
        let (cached_1, result_1) = match done_a1 {
            JobEvent::Done { cached, result, .. } => (cached, result),
            other => panic!("unexpected {other:?}"),
        };
        let (cached_2, result_2) = match done_a2 {
            JobEvent::Done { cached, result, .. } => (cached, result),
            other => panic!("unexpected {other:?}"),
        };
        assert!(!cached_1, "first run must simulate");
        assert!(cached_2, "second identical run must be a cache hit");
        assert_eq!(
            measurement_to_json_value(&result_1).to_json(),
            measurement_to_json_value(&result_2).to_json(),
            "identical specs must produce byte-identical payloads\n a1: {raw_a1}\n a2: {raw_a2}"
        );
        match finished.remove(&b1).unwrap().0 {
            JobEvent::Done { cached, .. } => assert!(!cached),
            other => panic!("unexpected {other:?}"),
        }

        // Graceful drain: refuse new work, finish everything, report.
        let c1 = client
            .submit("carol", JobKind::Sim, &tiny_spec("uts", 4))
            .unwrap();
        let completed = client.drain().unwrap();
        assert_eq!(completed, 4, "the in-flight job must finish before drain");
        match client.wait(c1).unwrap() {
            JobEvent::Done { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        let err = client
            .submit("carol", JobKind::Sim, &tiny_spec("uts", 2))
            .unwrap_err();
        assert!(
            matches!(
                err,
                ClientError::Rejected {
                    code: ErrorCode::Draining,
                    ..
                }
            ),
            "{err}"
        );
        let summary = server.join();
        assert_eq!(summary.completed, 4);
        assert_eq!(summary.failed, 0);
        assert_eq!(summary.cache_hits, 1);
        assert_eq!(summary.cache_misses, 3);
    }

    #[test]
    fn quotas_and_failures_are_typed() {
        let server = Server::start(ServerConfig {
            workers: 1,
            tenant_quota: 1,
            cache_path: None,
            job_log: None,
        })
        .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        client.pause().unwrap();
        let ok = client
            .submit("a", JobKind::Sim, &tiny_spec("uts", 2))
            .unwrap();
        let err = client
            .submit("a", JobKind::Sim, &tiny_spec("queens", 2))
            .unwrap_err();
        assert!(
            matches!(
                &err,
                ClientError::Rejected {
                    code: ErrorCode::QuotaExceeded,
                    ..
                }
            ),
            "{err}"
        );
        // A spec naming an unknown benchmark is admitted (the server does
        // not simulate at admission time) and fails as a typed job event.
        let bad = client
            .submit(
                "b",
                JobKind::Sim,
                &RunSpec::new("nope", Scale::Tiny, DesignPoint::cpu(1)),
            )
            .unwrap();
        client.resume().unwrap();
        match client.wait(ok).unwrap() {
            JobEvent::Done { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        match client.wait(bad).unwrap() {
            JobEvent::Failed { error, .. } => {
                assert_eq!(error, "unknown benchmark \"nope\"");
            }
            other => panic!("unexpected {other:?}"),
        }
        client.drain().unwrap();
        let summary = server.join();
        assert_eq!((summary.completed, summary.failed), (1, 1));
    }
}
