//! Simulation-as-a-service: a job server over the canonical
//! [`RunSpec`](pxl_flow::RunSpec) API.
//!
//! Everything the workspace can run — simulations, design-space
//! evaluations, profiled runs — is one serializable spec, so it can also
//! be a *job*: submitted over a socket, queued fairly across tenants,
//! deduplicated by content address, and answered with a byte-stable
//! result payload. This crate provides the three layers:
//!
//! - [`protocol`]: the line-delimited JSON wire format — typed
//!   [`Request`]s, [`JobEvent`]s and [`ErrorCode`]s with exact JSON
//!   round-trips (built on `pxl_sim::json`, no external dependencies).
//! - [`sched`]: [`FairQueue`], deterministic round-robin fair-share
//!   queuing with per-tenant quotas — pure data, unit-testable.
//! - [`journal`]: the write-ahead job journal that makes the server
//!   crash-safe — submissions are durable before they are acknowledged,
//!   and a restart replays the journal to recover unfinished jobs.
//! - [`server`]/[`client`]: the threaded TCP [`Server`] (accept loop,
//!   dispatcher, `pxl_sim::pool::WorkerPool` simulation workers,
//!   content-addressed `ResultCache` dedup, checkpoint/restore with
//!   cooperative preemption, graceful drain, JSONL job log) and the
//!   blocking [`Client`] with configurable timeouts and retry/backoff
//!   ([`ClientConfig`]).
//!
//! # Example
//!
//! ```
//! use pxl_apps::Scale;
//! use pxl_dse::{DesignPoint, PointArch};
//! use pxl_flow::RunSpec;
//! use pxl_serve::{Client, JobEvent, JobKind, Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let spec = RunSpec::new("uts", Scale::Tiny, DesignPoint::accel(PointArch::Flex, 1, 2));
//! let job = client.submit("docs", JobKind::Sim, &spec).unwrap();
//! match client.wait(job).unwrap() {
//!     JobEvent::Done { result, .. } => assert!(result.kernel_ps > 0),
//!     other => panic!("unexpected {other:?}"),
//! }
//! client.drain().unwrap();
//! server.join();
//! ```

pub mod client;
pub mod journal;
pub mod protocol;
pub mod sched;
pub mod server;

pub use client::{Client, ClientConfig, ClientError, Progress, StatsSnapshot, StatusSnapshot};
pub use protocol::{
    measurement_from_json_value, measurement_to_json_value, ErrorCode, JobEvent, JobId, JobKind,
    JobStatus, Request, RequestError,
};
pub use sched::{FairQueue, QuotaExceeded};
pub use server::{cache_key, ServeSummary, Server, ServerConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use pxl_apps::Scale;
    use pxl_dse::{DesignPoint, PointArch};
    use pxl_flow::RunSpec;

    fn tiny_spec(bench: &str, pes: usize) -> RunSpec {
        RunSpec::new(
            bench,
            Scale::Tiny,
            DesignPoint::accel(PointArch::Flex, 1, pes),
        )
    }

    #[test]
    fn end_to_end_fair_share_dedup_and_drain() {
        let server = Server::start(ServerConfig {
            workers: 1,
            tenant_quota: 8,
            ..ServerConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();

        // Pause so the queue fills before the single worker starts: the
        // dispatch order is then exactly FairQueue's deterministic
        // round-robin.
        assert!(client.pause().unwrap().paused);
        let spec_a = tiny_spec("uts", 2);
        let spec_b = tiny_spec("queens", 2);
        let a1 = client.submit("alice", JobKind::Sim, &spec_a).unwrap();
        let a2 = client.submit("alice", JobKind::Sim, &spec_a).unwrap();
        let b1 = client.submit("bob", JobKind::Sim, &spec_b).unwrap();
        assert!(!client.resume().unwrap().paused);

        // Alice flooded first, but bob's job must run between hers. The
        // terminal (done) event is the last per job, so once all three are
        // in, every running event has been seen too.
        let mut running_order = Vec::new();
        let mut finished = std::collections::HashMap::new();
        while finished.len() < 3 {
            let (event, raw) = client.next_event_raw().unwrap();
            match &event {
                JobEvent::Running { job } => running_order.push(*job),
                JobEvent::Done { job, .. } => {
                    finished.insert(*job, (event.clone(), raw));
                }
                JobEvent::Failed { job, error } => panic!("{job} failed: {error}"),
                _ => {}
            }
        }
        assert_eq!(running_order, vec![a1, b1, a2]);

        // a2 ran the same spec as a1: it must be a pure cache hit with a
        // byte-identical payload.
        let (done_a1, raw_a1) = finished.remove(&a1).unwrap();
        let (done_a2, raw_a2) = finished.remove(&a2).unwrap();
        let (cached_1, result_1) = match done_a1 {
            JobEvent::Done { cached, result, .. } => (cached, result),
            other => panic!("unexpected {other:?}"),
        };
        let (cached_2, result_2) = match done_a2 {
            JobEvent::Done { cached, result, .. } => (cached, result),
            other => panic!("unexpected {other:?}"),
        };
        assert!(!cached_1, "first run must simulate");
        assert!(cached_2, "second identical run must be a cache hit");
        assert_eq!(
            measurement_to_json_value(&result_1).to_json(),
            measurement_to_json_value(&result_2).to_json(),
            "identical specs must produce byte-identical payloads\n a1: {raw_a1}\n a2: {raw_a2}"
        );
        match finished.remove(&b1).unwrap().0 {
            JobEvent::Done { cached, .. } => assert!(!cached),
            other => panic!("unexpected {other:?}"),
        }

        // Graceful drain: refuse new work, finish everything, report.
        let c1 = client
            .submit("carol", JobKind::Sim, &tiny_spec("uts", 4))
            .unwrap();
        let completed = client.drain().unwrap();
        assert_eq!(completed, 4, "the in-flight job must finish before drain");
        match client.wait(c1).unwrap() {
            JobEvent::Done { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        let err = client
            .submit("carol", JobKind::Sim, &tiny_spec("uts", 2))
            .unwrap_err();
        assert!(
            matches!(
                err,
                ClientError::Rejected {
                    code: ErrorCode::Draining,
                    ..
                }
            ),
            "{err}"
        );
        let summary = server.join();
        assert_eq!(summary.completed, 4);
        assert_eq!(summary.failed, 0);
        assert_eq!(summary.cache_hits, 1);
        assert_eq!(summary.cache_misses, 3);
    }

    #[test]
    fn quotas_and_failures_are_typed() {
        let server = Server::start(ServerConfig {
            workers: 1,
            tenant_quota: 1,
            ..ServerConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        client.pause().unwrap();
        let ok = client
            .submit("a", JobKind::Sim, &tiny_spec("uts", 2))
            .unwrap();
        let err = client
            .submit("a", JobKind::Sim, &tiny_spec("queens", 2))
            .unwrap_err();
        assert!(
            matches!(
                &err,
                ClientError::Rejected {
                    code: ErrorCode::QuotaExceeded,
                    ..
                }
            ),
            "{err}"
        );
        // A spec naming an unknown benchmark is admitted (the server does
        // not simulate at admission time) and fails as a typed job event.
        let bad = client
            .submit(
                "b",
                JobKind::Sim,
                &RunSpec::new("nope", Scale::Tiny, DesignPoint::cpu(1)),
            )
            .unwrap();
        client.resume().unwrap();
        match client.wait(ok).unwrap() {
            JobEvent::Done { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        match client.wait(bad).unwrap() {
            JobEvent::Failed { error, .. } => {
                assert_eq!(error, "unknown benchmark \"nope\"");
            }
            other => panic!("unexpected {other:?}"),
        }
        client.drain().unwrap();
        let summary = server.join();
        assert_eq!((summary.completed, summary.failed), (1, 1));
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pxl-serve-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    /// Done events per job id in a journal file: the exactly-once ledger.
    fn done_counts(path: &std::path::Path) -> std::collections::HashMap<u64, u64> {
        let mut counts = std::collections::HashMap::new();
        for line in std::fs::read_to_string(path).unwrap().lines() {
            if let Ok(JobEvent::Done { job, .. }) = JobEvent::from_json(line) {
                *counts.entry(job.0).or_insert(0) += 1;
            }
        }
        counts
    }

    #[test]
    fn restart_recovers_unfinished_jobs_exactly_once() {
        let dir = temp_dir("recover");
        let log = dir.join("journal.jsonl");

        // A previous lifetime admitted jobs 1 and 2, finished only job 1,
        // and crashed before job 2 ran. Job 2 also has a durable
        // checkpoint to resume from.
        let base = tiny_spec("uts", 2);
        let reference = pxl_flow::execute(&base).unwrap().unwrap();
        let mut session = pxl_flow::SimSession::start(&base).unwrap().unwrap();
        let clock = session.clock();
        let epoch = clock
            .time_to_cycles(pxl_sim::Time::from_ps(reference.kernel.as_ps() / 2))
            .max(1);
        let spec = base.clone().with_checkpoint(epoch);
        match session.advance(Some(clock.cycles_to_time(epoch))).unwrap() {
            pxl_flow::SessionStatus::Paused { .. } => {}
            other => panic!("expected a pause, got {other:?}"),
        }
        std::fs::write(
            dir.join("job-2.ckpt.json"),
            format!("{}\n", session.snapshot().to_json()),
        )
        .unwrap();
        {
            let mut j = journal::Journal::open(&log, true).unwrap();
            j.record(&journal::submit_line(1, "alice", JobKind::Sim, &base));
            j.record(
                &JobEvent::Done {
                    job: JobId(1),
                    cached: false,
                    result: pxl_flow::measurement_of(&base, None, &reference),
                    trace_events: None,
                    resumed_from_cycle: None,
                }
                .to_json(),
            );
            j.record(&journal::submit_line(2, "alice", JobKind::Sim, &spec));
            j.record(&journal::checkpoint_line(2, epoch, "job-2.ckpt.json"));
        }

        let server = Server::start(ServerConfig {
            workers: 1,
            job_log: Some(log.clone()),
            checkpoint_dir: Some(dir.clone()),
            ..ServerConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        client.drain().unwrap();
        let summary = server.join();
        assert_eq!(summary.recovered, 1, "only job 2 was unfinished");
        assert_eq!(summary.completed, 1);
        assert_eq!(summary.resumed, 1, "job 2 resumed from its checkpoint");
        assert_eq!(summary.journal_torn, 0);

        // Exactly-once across the crash: one done per job in the full
        // journal, and job 2's final leg names its resume cycle.
        let counts = done_counts(&log);
        assert_eq!(counts.get(&1), Some(&1), "finished jobs must not re-run");
        assert_eq!(counts.get(&2), Some(&1));
        let resumed_from = std::fs::read_to_string(&log)
            .unwrap()
            .lines()
            .filter_map(|l| JobEvent::from_json(l).ok())
            .find_map(|e| match e {
                JobEvent::Done {
                    job: JobId(2),
                    resumed_from_cycle,
                    ..
                } => resumed_from_cycle,
                _ => None,
            });
        assert_eq!(resumed_from, Some(epoch));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_line_is_tolerated_and_counted() {
        let dir = temp_dir("torn");
        let log = dir.join("journal.jsonl");
        {
            let mut j = journal::Journal::open(&log, false).unwrap();
            j.record(&journal::submit_line(
                1,
                "a",
                JobKind::Sim,
                &tiny_spec("uts", 2),
            ));
        }
        // A crash tore the next record mid-write.
        let mut text = std::fs::read_to_string(&log).unwrap();
        text.push_str("{\"journal\":\"submit\",\"job\":2,\"ten");
        std::fs::write(&log, text).unwrap();

        let server = Server::start(ServerConfig {
            workers: 1,
            job_log: Some(log.clone()),
            ..ServerConfig::default()
        })
        .unwrap();
        assert_eq!(server.metrics().get("server.journal_torn"), 1);
        let mut client = Client::connect(server.addr()).unwrap();
        client.drain().unwrap();
        let summary = server.join();
        assert_eq!(summary.journal_torn, 1);
        assert_eq!(summary.recovered, 1, "the intact submit still recovers");
        assert_eq!(summary.completed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointed_job_yields_to_a_waiting_tenant() {
        // Find a checkpoint epoch well inside the run so the first
        // boundary arrives while the other tenant is still queued.
        let base = tiny_spec("uts", 2);
        let reference = pxl_flow::execute(&base).unwrap().unwrap();
        let session = pxl_flow::SimSession::start(&base).unwrap().unwrap();
        let epoch = session
            .clock()
            .time_to_cycles(pxl_sim::Time::from_ps(reference.kernel.as_ps() / 4))
            .max(1);

        let server = Server::start(ServerConfig {
            workers: 1,
            tenant_quota: 8,
            ..ServerConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        assert!(client.pause().unwrap().paused);
        let a = client
            .submit("alice", JobKind::Sim, &base.clone().with_checkpoint(epoch))
            .unwrap();
        let b = client
            .submit("bob", JobKind::Sim, &tiny_spec("queens", 2))
            .unwrap();
        assert!(!client.resume().unwrap().paused);

        let mut preemptions = Vec::new();
        let mut done = std::collections::HashMap::new();
        while done.len() < 2 {
            match client.next_event().unwrap() {
                JobEvent::Preempted { job, cycle } => preemptions.push((job, cycle)),
                JobEvent::Done {
                    job,
                    resumed_from_cycle,
                    ..
                } => {
                    done.insert(job, resumed_from_cycle);
                }
                JobEvent::Failed { job, error } => panic!("{job} failed: {error}"),
                _ => {}
            }
        }
        assert_eq!(
            preemptions.first(),
            Some(&(a, epoch)),
            "alice must yield at her first checkpoint while bob waits"
        );
        assert_eq!(done.get(&b), Some(&None), "bob's job never resumed");
        let resumed = done.get(&a).copied().flatten();
        assert!(
            resumed.is_some_and(|c| c >= epoch),
            "alice's final leg must resume from a checkpoint, got {resumed:?}"
        );

        client.drain().unwrap();
        let summary = server.join();
        assert_eq!(summary.completed, 2);
        assert!(summary.preempted >= 1);
        assert!(summary.resumed >= 1);
    }
}
