//! Fair-share job queuing: per-tenant FIFO queues drained round-robin,
//! with a per-tenant admission quota.
//!
//! [`FairQueue`] is pure data — no threads, no clocks — so fairness is
//! deterministic and unit-testable: given the same submissions, `next()`
//! always yields the same order. Tenants take turns in first-submission
//! order; within a tenant, jobs run in submission order. A tenant that
//! floods the queue cannot starve the others (it only ever gets one job
//! per round) and cannot grow without bound (admission beyond `quota`
//! queued jobs is refused).

use std::collections::VecDeque;

use crate::protocol::JobId;

/// Admission was refused because the tenant is at its quota.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuotaExceeded {
    /// The refused tenant.
    pub tenant: String,
    /// The quota it is at.
    pub quota: usize,
}

impl std::fmt::Display for QuotaExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tenant {:?} already has {} queued jobs",
            self.tenant, self.quota
        )
    }
}

impl std::error::Error for QuotaExceeded {}

struct Tenant {
    name: String,
    queue: VecDeque<JobId>,
}

/// A round-robin multi-queue over tenants.
pub struct FairQueue {
    tenants: Vec<Tenant>,
    cursor: usize,
    quota: usize,
}

impl FairQueue {
    /// An empty queue admitting at most `quota` queued jobs per tenant
    /// (clamped to at least 1).
    pub fn new(quota: usize) -> FairQueue {
        FairQueue {
            tenants: Vec::new(),
            cursor: 0,
            quota: quota.max(1),
        }
    }

    /// The per-tenant admission quota.
    pub fn quota(&self) -> usize {
        self.quota
    }

    /// Admits `job` to `tenant`'s queue, returning its position there
    /// (0 = the tenant's next job to run).
    ///
    /// # Errors
    ///
    /// [`QuotaExceeded`] if the tenant already has `quota` queued jobs;
    /// the queue is unchanged.
    pub fn enqueue(&mut self, tenant: &str, job: JobId) -> Result<usize, QuotaExceeded> {
        let quota = self.quota;
        let slot = self.slot(tenant);
        if slot.queue.len() >= quota {
            return Err(QuotaExceeded {
                tenant: tenant.to_owned(),
                quota,
            });
        }
        slot.queue.push_back(job);
        Ok(slot.queue.len() - 1)
    }

    /// Quota-exempt re-admission to the *front* of the tenant's queue.
    ///
    /// Used when a running job yields at a checkpoint boundary: the job
    /// was already admitted once, so the quota does not apply, and it
    /// keeps its place ahead of the tenant's younger jobs. Fairness
    /// across tenants is unaffected — the round-robin cursor has moved
    /// past this tenant, so the others get their turn first.
    pub fn requeue_front(&mut self, tenant: &str, job: JobId) {
        self.slot(tenant).queue.push_front(job);
    }

    /// Quota-exempt admission to the back of the tenant's queue.
    ///
    /// Used by journal recovery: the job was admitted in a previous
    /// server lifetime, so re-admission must not be refused even if the
    /// quota was lowered in between.
    pub fn restore(&mut self, tenant: &str, job: JobId) {
        self.slot(tenant).queue.push_back(job);
    }

    fn slot(&mut self, tenant: &str) -> &mut Tenant {
        if let Some(i) = self.tenants.iter().position(|t| t.name == tenant) {
            return &mut self.tenants[i];
        }
        self.tenants.push(Tenant {
            name: tenant.to_owned(),
            queue: VecDeque::new(),
        });
        self.tenants.last_mut().expect("just pushed")
    }

    /// Takes the next job to run: the front of the first non-empty tenant
    /// queue at or after the round-robin cursor, advancing the cursor past
    /// that tenant so the next call serves someone else.
    pub fn pop(&mut self) -> Option<JobId> {
        if self.tenants.is_empty() {
            return None;
        }
        let n = self.tenants.len();
        for step in 0..n {
            let i = (self.cursor + step) % n;
            if let Some(job) = self.tenants[i].queue.pop_front() {
                self.cursor = (i + 1) % n;
                return Some(job);
            }
        }
        None
    }

    /// Queued jobs across all tenants.
    pub fn len(&self) -> usize {
        self.tenants.iter().map(|t| t.queue.len()).sum()
    }

    /// Whether no job is queued.
    pub fn is_empty(&self) -> bool {
        self.tenants.iter().all(|t| t.queue.is_empty())
    }

    /// Per-tenant queue depths, sorted by tenant name so the listing is
    /// byte-stable regardless of submission order. Tenants whose queues
    /// have drained still appear (with depth 0) — a tenant the server has
    /// seen is part of its health picture.
    pub fn depths(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .tenants
            .iter()
            .map(|t| (t.name.clone(), t.queue.len() as u64))
            .collect();
        out.sort();
        out
    }

    /// Queued jobs for one tenant (0 if unknown).
    pub fn queued_for(&self, tenant: &str) -> usize {
        self.tenants
            .iter()
            .find(|t| t.name == tenant)
            .map_or(0, |t| t.queue.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut FairQueue) -> Vec<u64> {
        std::iter::from_fn(|| q.pop()).map(|j| j.0).collect()
    }

    #[test]
    fn single_tenant_is_fifo() {
        let mut q = FairQueue::new(8);
        for n in 0..5 {
            assert_eq!(q.enqueue("a", JobId(n)), Ok(n as usize));
        }
        assert_eq!(q.len(), 5);
        assert_eq!(drain(&mut q), vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn tenants_alternate_round_robin() {
        let mut q = FairQueue::new(8);
        // Tenant a floods before b shows up; b must not starve.
        for n in 0..4 {
            q.enqueue("a", JobId(n)).unwrap();
        }
        q.enqueue("b", JobId(10)).unwrap();
        q.enqueue("b", JobId(11)).unwrap();
        assert_eq!(drain(&mut q), vec![0, 10, 1, 11, 2, 3]);
    }

    #[test]
    fn three_tenants_take_turns_in_first_submission_order() {
        let mut q = FairQueue::new(8);
        q.enqueue("c", JobId(30)).unwrap();
        q.enqueue("a", JobId(10)).unwrap();
        q.enqueue("b", JobId(20)).unwrap();
        q.enqueue("a", JobId(11)).unwrap();
        q.enqueue("c", JobId(31)).unwrap();
        assert_eq!(drain(&mut q), vec![30, 10, 20, 31, 11]);
    }

    #[test]
    fn quota_refuses_the_flood_but_keeps_the_queue_intact() {
        let mut q = FairQueue::new(2);
        q.enqueue("a", JobId(0)).unwrap();
        q.enqueue("a", JobId(1)).unwrap();
        let err = q.enqueue("a", JobId(2)).unwrap_err();
        assert_eq!(err.tenant, "a");
        assert_eq!(err.quota, 2);
        assert_eq!(err.to_string(), "tenant \"a\" already has 2 queued jobs");
        // Other tenants are unaffected, and draining frees the slot.
        q.enqueue("b", JobId(9)).unwrap();
        assert_eq!(q.queued_for("a"), 2);
        q.pop();
        assert_eq!(q.queued_for("a"), 1);
        assert_eq!(q.enqueue("a", JobId(2)), Ok(1));
    }

    #[test]
    fn interleaved_submit_and_drain_stays_fair() {
        let mut q = FairQueue::new(8);
        q.enqueue("a", JobId(0)).unwrap();
        q.enqueue("b", JobId(10)).unwrap();
        assert_eq!(q.pop(), Some(JobId(0)));
        // a refills while b still waits; b's turn comes next regardless.
        q.enqueue("a", JobId(1)).unwrap();
        assert_eq!(q.pop(), Some(JobId(10)));
        assert_eq!(q.pop(), Some(JobId(1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn requeue_front_bypasses_quota_and_keeps_tenant_order() {
        let mut q = FairQueue::new(1);
        q.enqueue("a", JobId(0)).unwrap();
        q.enqueue("b", JobId(10)).unwrap();
        let yielded = q.pop().unwrap();
        assert_eq!(yielded, JobId(0));
        // The preempted job goes back quota-exempt, ahead of nothing of
        // its own, and b (whose turn it now is) runs before it resumes.
        q.requeue_front("a", yielded);
        assert_eq!(q.queued_for("a"), 1);
        assert_eq!(drain(&mut q), vec![10, 0]);
    }

    #[test]
    fn restore_bypasses_quota_and_appends() {
        let mut q = FairQueue::new(1);
        q.restore("a", JobId(0));
        q.restore("a", JobId(1));
        q.restore("a", JobId(2));
        assert_eq!(q.queued_for("a"), 3);
        assert_eq!(drain(&mut q), vec![0, 1, 2]);
    }

    #[test]
    fn depths_are_name_sorted_and_keep_drained_tenants() {
        let mut q = FairQueue::new(8);
        q.enqueue("zeta", JobId(0)).unwrap();
        q.enqueue("alpha", JobId(1)).unwrap();
        q.enqueue("zeta", JobId(2)).unwrap();
        assert_eq!(
            q.depths(),
            vec![("alpha".to_owned(), 1), ("zeta".to_owned(), 2)]
        );
        // Draining a tenant keeps it in the listing at depth 0.
        q.pop();
        q.pop();
        q.pop();
        assert_eq!(
            q.depths(),
            vec![("alpha".to_owned(), 0), ("zeta".to_owned(), 0)]
        );
    }

    #[test]
    fn quota_is_clamped_to_at_least_one() {
        let mut q = FairQueue::new(0);
        assert_eq!(q.quota(), 1);
        q.enqueue("a", JobId(0)).unwrap();
        assert!(q.enqueue("a", JobId(1)).is_err());
    }
}
