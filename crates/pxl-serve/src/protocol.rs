//! The line-delimited JSON wire protocol: typed requests, job events and
//! error codes, with exact JSON round-trips in both directions.
//!
//! Every message is one JSON object on one line. Client→server messages
//! are [`Request`]s discriminated by `"op"`; server→client messages are
//! [`JobEvent`]s discriminated by `"event"`. Rendering is canonical
//! (fixed member order via [`JsonValue`]), so two identical results are
//! byte-identical on the wire — the property the dedup smoke asserts.

use pxl_dse::Measurement;
use pxl_flow::{RunSpec, SpecError};
use pxl_sim::json::JsonValue;

/// A server-assigned job identity, unique within one server lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// What a submitted spec should produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Simulate and report the runtime/energy measurement (no FPGA
    /// resource model — `lut`/`bram18` are zero).
    Sim,
    /// Simulate as a design-space-exploration evaluation: the measurement
    /// includes the elaborated design's LUT/BRAM footprint.
    Dse,
    /// Simulate with event tracing and report the measurement plus the
    /// trace size. Profile jobs always execute (their artifact is the
    /// trace, not the cached measurement).
    Profile,
}

impl JobKind {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            JobKind::Sim => "sim",
            JobKind::Dse => "dse",
            JobKind::Profile => "profile",
        }
    }

    /// Parses a [`JobKind::label`] string.
    pub fn from_label(label: &str) -> Option<JobKind> {
        match label {
            "sim" => Some(JobKind::Sim),
            "dse" => Some(JobKind::Dse),
            "profile" => Some(JobKind::Profile),
            _ => None,
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting in its tenant's queue.
    Queued,
    /// Executing on a pool worker.
    Running,
    /// Finished with a result payload.
    Done,
    /// Finished with an error.
    Failed,
}

impl JobStatus {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }
}

/// Why the server rejected a request (typed, machine-checkable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line is not well-formed JSON.
    BadJson,
    /// The line parses but is not a valid request shape.
    BadRequest,
    /// The request's `"op"` is not one the server knows.
    UnknownOp,
    /// The submitted spec failed [`RunSpec::from_json_value`].
    BadSpec,
    /// The tenant already has its quota of queued jobs.
    QuotaExceeded,
    /// The server is draining and accepts no new submissions.
    Draining,
}

impl ErrorCode {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad_json",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownOp => "unknown_op",
            ErrorCode::BadSpec => "bad_spec",
            ErrorCode::QuotaExceeded => "quota_exceeded",
            ErrorCode::Draining => "draining",
        }
    }

    /// Parses an [`ErrorCode::label`] string.
    pub fn from_label(label: &str) -> Option<ErrorCode> {
        match label {
            "bad_json" => Some(ErrorCode::BadJson),
            "bad_request" => Some(ErrorCode::BadRequest),
            "unknown_op" => Some(ErrorCode::UnknownOp),
            "bad_spec" => Some(ErrorCode::BadSpec),
            "quota_exceeded" => Some(ErrorCode::QuotaExceeded),
            "draining" => Some(ErrorCode::Draining),
            _ => None,
        }
    }
}

/// A rejected request: the typed code plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// The machine-checkable rejection reason.
    pub code: ErrorCode,
    /// What was wrong, for humans.
    pub message: String,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.label(), self.message)
    }
}

impl std::error::Error for RequestError {}

/// One client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit one spec as a job under a tenant.
    Submit {
        /// The tenant whose queue and quota the job charges.
        tenant: String,
        /// What the job produces.
        kind: JobKind,
        /// The run to perform.
        spec: Box<RunSpec>,
    },
    /// Ask for queue/running/completed counters.
    Status,
    /// Ask for full server health: per-tenant queue depths, lifecycle
    /// counters (recovered/resumed/preempted), and journal state.
    Stats,
    /// Stop dispatching queued jobs (running jobs finish).
    Pause,
    /// Resume dispatching.
    Resume,
    /// Drain gracefully: finish every queued and running job, then stop.
    Shutdown,
}

impl Request {
    /// The request as one canonical JSON object.
    pub fn to_json_value(&self) -> JsonValue {
        match self {
            Request::Submit { tenant, kind, spec } => JsonValue::Object(vec![
                ("op".to_owned(), JsonValue::Str("submit".to_owned())),
                ("tenant".to_owned(), JsonValue::Str(tenant.clone())),
                ("kind".to_owned(), JsonValue::Str(kind.label().to_owned())),
                ("spec".to_owned(), spec.to_json_value()),
            ]),
            Request::Status => op_only("status"),
            Request::Stats => op_only("stats"),
            Request::Pause => op_only("pause"),
            Request::Resume => op_only("resume"),
            Request::Shutdown => op_only("shutdown"),
        }
    }

    /// One wire line (no trailing newline).
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Parses one wire line.
    ///
    /// # Errors
    ///
    /// A typed [`RequestError`] naming exactly what was rejected.
    pub fn from_json(line: &str) -> Result<Request, RequestError> {
        let value = JsonValue::parse(line).map_err(|e| RequestError {
            code: ErrorCode::BadJson,
            message: e.to_string(),
        })?;
        if value.as_object().is_none() {
            return Err(RequestError {
                code: ErrorCode::BadRequest,
                message: "a request must be a JSON object".to_owned(),
            });
        }
        let op = value
            .get("op")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| RequestError {
                code: ErrorCode::BadRequest,
                message: "missing string field 'op'".to_owned(),
            })?;
        match op {
            "submit" => {
                let tenant = value
                    .get("tenant")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| RequestError {
                        code: ErrorCode::BadRequest,
                        message: "submit needs a string field 'tenant'".to_owned(),
                    })?
                    .to_owned();
                if tenant.is_empty() {
                    return Err(RequestError {
                        code: ErrorCode::BadRequest,
                        message: "'tenant' must be non-empty".to_owned(),
                    });
                }
                let kind_label =
                    value
                        .get("kind")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| RequestError {
                            code: ErrorCode::BadRequest,
                            message: "submit needs a string field 'kind'".to_owned(),
                        })?;
                let kind = JobKind::from_label(kind_label).ok_or_else(|| RequestError {
                    code: ErrorCode::BadRequest,
                    message: format!("unknown kind {kind_label:?} (sim|dse|profile)"),
                })?;
                let spec_value = value.get("spec").ok_or_else(|| RequestError {
                    code: ErrorCode::BadRequest,
                    message: "submit needs a 'spec' object".to_owned(),
                })?;
                let spec =
                    RunSpec::from_json_value(spec_value).map_err(|e: SpecError| RequestError {
                        code: ErrorCode::BadSpec,
                        message: e.to_string(),
                    })?;
                Ok(Request::Submit {
                    tenant,
                    kind,
                    spec: Box::new(spec),
                })
            }
            "status" => Ok(Request::Status),
            "stats" => Ok(Request::Stats),
            "pause" => Ok(Request::Pause),
            "resume" => Ok(Request::Resume),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(RequestError {
                code: ErrorCode::UnknownOp,
                message: format!("unknown op {other:?}"),
            }),
        }
    }
}

fn op_only(op: &str) -> JsonValue {
    JsonValue::Object(vec![("op".to_owned(), JsonValue::Str(op.to_owned()))])
}

/// One server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent {
    /// The submission was admitted; `key` is the 16-hex-digit content
    /// address of the spec's canonical identity (the dedup key).
    Accepted {
        /// The assigned job.
        job: JobId,
        /// The tenant it was charged to.
        tenant: String,
        /// Content address of the canonical spec.
        key: String,
    },
    /// The job entered its tenant's queue at `position` (0 = next).
    Queued {
        /// The queued job.
        job: JobId,
        /// Depth in the tenant's queue at admission.
        position: u64,
    },
    /// The job started executing on a pool worker.
    Running {
        /// The running job.
        job: JobId,
    },
    /// A headline-metrics snapshot from a freshly executed (non-cached)
    /// run, emitted between `running` and `done`.
    Metrics {
        /// The job the snapshot belongs to.
        job: JobId,
        /// Kernel time (simulated picoseconds).
        kernel_ps: u64,
        /// Work-stealing attempts (accelerator + CPU).
        steal_attempts: u64,
        /// DRAM traffic in bytes.
        dram_bytes: u64,
        /// Captured trace events (0 unless tracing was on).
        trace_events: u64,
    },
    /// The job finished; `result` is the measurement payload.
    Done {
        /// The finished job.
        job: JobId,
        /// Whether the result came from the content-addressed cache
        /// without simulating.
        cached: bool,
        /// The measurement.
        result: Measurement,
        /// Trace size for profile jobs (`None` for sim/dse).
        trace_events: Option<u64>,
        /// The simulated cycle the final leg resumed from, for jobs that
        /// were preempted or recovered from a checkpoint (`None` for jobs
        /// that ran uninterrupted from cycle zero).
        resumed_from_cycle: Option<u64>,
    },
    /// A checkpointed job cooperatively yielded its worker at a cycle
    /// boundary so queued work (e.g. a starved tenant) can run; it is back
    /// in its tenant's queue and will resume from the checkpoint.
    Preempted {
        /// The preempted job.
        job: JobId,
        /// The simulated cycle it checkpointed and yielded at.
        cycle: u64,
    },
    /// The job failed (unknown benchmark, infeasible point, simulation or
    /// golden-validation failure).
    Failed {
        /// The failed job.
        job: JobId,
        /// The failure, in [`pxl_flow::RunError`] message format.
        error: String,
    },
    /// A request was rejected before becoming a job.
    Error {
        /// The typed rejection.
        code: ErrorCode,
        /// What was wrong.
        message: String,
    },
    /// Answer to [`Request::Status`].
    Status {
        /// Jobs waiting across all tenant queues.
        queued: u64,
        /// Jobs currently executing.
        running: u64,
        /// Jobs finished successfully since startup.
        completed: u64,
        /// Jobs failed since startup.
        failed: u64,
        /// Whether dispatch is paused.
        paused: bool,
        /// Whether the server is draining.
        draining: bool,
    },
    /// Answer to [`Request::Stats`]: the full server-health picture.
    /// Rendering is canonical (tenants name-sorted by the server), so two
    /// identical states are byte-identical on the wire.
    Stats {
        /// Per-tenant queue depths, sorted by tenant name. Tenants whose
        /// queues have drained still appear at depth 0.
        tenants: Vec<(String, u64)>,
        /// Jobs waiting across all tenant queues.
        queued: u64,
        /// Jobs currently executing.
        running: u64,
        /// Jobs finished successfully since startup.
        completed: u64,
        /// Jobs failed since startup.
        failed: u64,
        /// Jobs re-admitted from the journal at startup.
        recovered: u64,
        /// Execution legs resumed from a persisted checkpoint.
        resumed: u64,
        /// Cooperative yields at checkpoint boundaries.
        preempted: u64,
        /// Torn trailing journal lines discarded at recovery.
        journal_torn: u64,
        /// Whether a journal is attached (crash-safe mode).
        journal: bool,
        /// Whether dispatch is paused.
        paused: bool,
        /// Whether the server is draining.
        draining: bool,
    },
    /// Periodic progress from a running checkpointed job, emitted each
    /// time it reaches a checkpoint boundary: how far the simulation has
    /// advanced and how fast it is spawning work.
    Progress {
        /// The running job.
        job: JobId,
        /// Simulated cycles completed so far.
        cycle: u64,
        /// Tasks executed so far (accelerator + CPU).
        tasks: u64,
        /// Task throughput over the simulated time so far, in tasks per
        /// simulated second.
        tasks_per_sec: u64,
    },
    /// Graceful shutdown finished: every admitted job completed.
    Drained {
        /// Jobs finished successfully over the server's lifetime.
        completed: u64,
    },
}

/// Renders a [`Measurement`] as a canonical JSON object (fixed member
/// order; `energy_j` in shortest-round-trip form, so re-rendering a parsed
/// payload is byte-identical).
pub fn measurement_to_json_value(m: &Measurement) -> JsonValue {
    JsonValue::Object(vec![
        ("kernel_ps".to_owned(), JsonValue::num_u64(m.kernel_ps)),
        ("whole_ps".to_owned(), JsonValue::num_u64(m.whole_ps)),
        ("energy_j".to_owned(), JsonValue::num_f64(m.energy_j)),
        ("lut".to_owned(), JsonValue::num_u64(m.lut)),
        ("bram18".to_owned(), JsonValue::num_u64(m.bram18)),
    ])
}

/// Parses [`measurement_to_json_value`] output.
///
/// # Errors
///
/// Names the missing or malformed field.
pub fn measurement_from_json_value(value: &JsonValue) -> Result<Measurement, String> {
    let u = |key: &str| {
        value
            .get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("result: missing field {key}"))
    };
    let energy_j = value
        .get("energy_j")
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| "result: missing field energy_j".to_owned())?;
    Ok(Measurement {
        kernel_ps: u("kernel_ps")?,
        whole_ps: u("whole_ps")?,
        energy_j,
        lut: u("lut")?,
        bram18: u("bram18")?,
    })
}

impl JobEvent {
    /// The event as one canonical JSON object.
    pub fn to_json_value(&self) -> JsonValue {
        let ev = |name: &str, mut rest: Vec<(String, JsonValue)>| {
            let mut members = vec![("event".to_owned(), JsonValue::Str(name.to_owned()))];
            members.append(&mut rest);
            JsonValue::Object(members)
        };
        match self {
            JobEvent::Accepted { job, tenant, key } => ev(
                "accepted",
                vec![
                    ("job".to_owned(), JsonValue::num_u64(job.0)),
                    ("tenant".to_owned(), JsonValue::Str(tenant.clone())),
                    ("key".to_owned(), JsonValue::Str(key.clone())),
                ],
            ),
            JobEvent::Queued { job, position } => ev(
                "queued",
                vec![
                    ("job".to_owned(), JsonValue::num_u64(job.0)),
                    ("position".to_owned(), JsonValue::num_u64(*position)),
                ],
            ),
            JobEvent::Running { job } => ev(
                "running",
                vec![("job".to_owned(), JsonValue::num_u64(job.0))],
            ),
            JobEvent::Metrics {
                job,
                kernel_ps,
                steal_attempts,
                dram_bytes,
                trace_events,
            } => ev(
                "metrics",
                vec![
                    ("job".to_owned(), JsonValue::num_u64(job.0)),
                    ("kernel_ps".to_owned(), JsonValue::num_u64(*kernel_ps)),
                    (
                        "steal_attempts".to_owned(),
                        JsonValue::num_u64(*steal_attempts),
                    ),
                    ("dram_bytes".to_owned(), JsonValue::num_u64(*dram_bytes)),
                    ("trace_events".to_owned(), JsonValue::num_u64(*trace_events)),
                ],
            ),
            JobEvent::Done {
                job,
                cached,
                result,
                trace_events,
                resumed_from_cycle,
            } => {
                let mut rest = vec![
                    ("job".to_owned(), JsonValue::num_u64(job.0)),
                    ("cached".to_owned(), JsonValue::Bool(*cached)),
                    ("result".to_owned(), measurement_to_json_value(result)),
                ];
                if let Some(n) = trace_events {
                    rest.push(("trace_events".to_owned(), JsonValue::num_u64(*n)));
                }
                if let Some(c) = resumed_from_cycle {
                    rest.push(("resumed_from_cycle".to_owned(), JsonValue::num_u64(*c)));
                }
                ev("done", rest)
            }
            JobEvent::Preempted { job, cycle } => ev(
                "preempted",
                vec![
                    ("job".to_owned(), JsonValue::num_u64(job.0)),
                    ("cycle".to_owned(), JsonValue::num_u64(*cycle)),
                ],
            ),
            JobEvent::Failed { job, error } => ev(
                "failed",
                vec![
                    ("job".to_owned(), JsonValue::num_u64(job.0)),
                    ("error".to_owned(), JsonValue::Str(error.clone())),
                ],
            ),
            JobEvent::Error { code, message } => ev(
                "error",
                vec![
                    ("code".to_owned(), JsonValue::Str(code.label().to_owned())),
                    ("message".to_owned(), JsonValue::Str(message.clone())),
                ],
            ),
            JobEvent::Status {
                queued,
                running,
                completed,
                failed,
                paused,
                draining,
            } => ev(
                "status",
                vec![
                    ("queued".to_owned(), JsonValue::num_u64(*queued)),
                    ("running".to_owned(), JsonValue::num_u64(*running)),
                    ("completed".to_owned(), JsonValue::num_u64(*completed)),
                    ("failed".to_owned(), JsonValue::num_u64(*failed)),
                    ("paused".to_owned(), JsonValue::Bool(*paused)),
                    ("draining".to_owned(), JsonValue::Bool(*draining)),
                ],
            ),
            JobEvent::Stats {
                tenants,
                queued,
                running,
                completed,
                failed,
                recovered,
                resumed,
                preempted,
                journal_torn,
                journal,
                paused,
                draining,
            } => ev(
                "stats",
                vec![
                    (
                        "tenants".to_owned(),
                        JsonValue::Object(
                            tenants
                                .iter()
                                .map(|(name, depth)| (name.clone(), JsonValue::num_u64(*depth)))
                                .collect(),
                        ),
                    ),
                    ("queued".to_owned(), JsonValue::num_u64(*queued)),
                    ("running".to_owned(), JsonValue::num_u64(*running)),
                    ("completed".to_owned(), JsonValue::num_u64(*completed)),
                    ("failed".to_owned(), JsonValue::num_u64(*failed)),
                    ("recovered".to_owned(), JsonValue::num_u64(*recovered)),
                    ("resumed".to_owned(), JsonValue::num_u64(*resumed)),
                    ("preempted".to_owned(), JsonValue::num_u64(*preempted)),
                    ("journal_torn".to_owned(), JsonValue::num_u64(*journal_torn)),
                    ("journal".to_owned(), JsonValue::Bool(*journal)),
                    ("paused".to_owned(), JsonValue::Bool(*paused)),
                    ("draining".to_owned(), JsonValue::Bool(*draining)),
                ],
            ),
            JobEvent::Progress {
                job,
                cycle,
                tasks,
                tasks_per_sec,
            } => ev(
                "progress",
                vec![
                    ("job".to_owned(), JsonValue::num_u64(job.0)),
                    ("cycle".to_owned(), JsonValue::num_u64(*cycle)),
                    ("tasks".to_owned(), JsonValue::num_u64(*tasks)),
                    (
                        "tasks_per_sec".to_owned(),
                        JsonValue::num_u64(*tasks_per_sec),
                    ),
                ],
            ),
            JobEvent::Drained { completed } => ev(
                "drained",
                vec![("completed".to_owned(), JsonValue::num_u64(*completed))],
            ),
        }
    }

    /// One wire line (no trailing newline).
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Rebuilds an event from [`JobEvent::to_json_value`] output.
    ///
    /// # Errors
    ///
    /// A message naming the missing or malformed field.
    pub fn from_json_value(value: &JsonValue) -> Result<JobEvent, String> {
        let name = value
            .get("event")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "missing string field 'event'".to_owned())?;
        let job = || {
            value
                .get("job")
                .and_then(JsonValue::as_u64)
                .map(JobId)
                .ok_or_else(|| format!("{name}: missing field job"))
        };
        let text = |key: &str| {
            value
                .get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("{name}: missing field {key}"))
        };
        let num = |key: &str| {
            value
                .get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("{name}: missing field {key}"))
        };
        let flag = |key: &str| {
            value
                .get(key)
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| format!("{name}: missing field {key}"))
        };
        match name {
            "accepted" => Ok(JobEvent::Accepted {
                job: job()?,
                tenant: text("tenant")?,
                key: text("key")?,
            }),
            "queued" => Ok(JobEvent::Queued {
                job: job()?,
                position: num("position")?,
            }),
            "running" => Ok(JobEvent::Running { job: job()? }),
            "metrics" => Ok(JobEvent::Metrics {
                job: job()?,
                kernel_ps: num("kernel_ps")?,
                steal_attempts: num("steal_attempts")?,
                dram_bytes: num("dram_bytes")?,
                trace_events: num("trace_events")?,
            }),
            "done" => Ok(JobEvent::Done {
                job: job()?,
                cached: flag("cached")?,
                result: value
                    .get("result")
                    .ok_or_else(|| "done: missing field result".to_owned())
                    .and_then(measurement_from_json_value)?,
                trace_events: value.get("trace_events").and_then(JsonValue::as_u64),
                resumed_from_cycle: value.get("resumed_from_cycle").and_then(JsonValue::as_u64),
            }),
            "preempted" => Ok(JobEvent::Preempted {
                job: job()?,
                cycle: num("cycle")?,
            }),
            "failed" => Ok(JobEvent::Failed {
                job: job()?,
                error: text("error")?,
            }),
            "error" => {
                let label = text("code")?;
                let code = ErrorCode::from_label(&label)
                    .ok_or_else(|| format!("error: unknown code {label:?}"))?;
                Ok(JobEvent::Error {
                    code,
                    message: text("message")?,
                })
            }
            "status" => Ok(JobEvent::Status {
                queued: num("queued")?,
                running: num("running")?,
                completed: num("completed")?,
                failed: num("failed")?,
                paused: flag("paused")?,
                draining: flag("draining")?,
            }),
            "stats" => {
                let tenants = value
                    .get("tenants")
                    .and_then(JsonValue::as_object)
                    .ok_or_else(|| "stats: missing field tenants".to_owned())?
                    .iter()
                    .map(|(tenant, depth)| {
                        depth
                            .as_u64()
                            .map(|d| (tenant.clone(), d))
                            .ok_or_else(|| format!("stats: tenant {tenant:?} depth malformed"))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(JobEvent::Stats {
                    tenants,
                    queued: num("queued")?,
                    running: num("running")?,
                    completed: num("completed")?,
                    failed: num("failed")?,
                    recovered: num("recovered")?,
                    resumed: num("resumed")?,
                    preempted: num("preempted")?,
                    journal_torn: num("journal_torn")?,
                    journal: flag("journal")?,
                    paused: flag("paused")?,
                    draining: flag("draining")?,
                })
            }
            "progress" => Ok(JobEvent::Progress {
                job: job()?,
                cycle: num("cycle")?,
                tasks: num("tasks")?,
                tasks_per_sec: num("tasks_per_sec")?,
            }),
            "drained" => Ok(JobEvent::Drained {
                completed: num("completed")?,
            }),
            other => Err(format!("unknown event {other:?}")),
        }
    }

    /// Parses one wire line.
    ///
    /// # Errors
    ///
    /// A message naming the problem.
    pub fn from_json(line: &str) -> Result<JobEvent, String> {
        let value = JsonValue::parse(line).map_err(|e| e.to_string())?;
        JobEvent::from_json_value(&value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxl_apps::Scale;
    use pxl_dse::{DesignPoint, PointArch};

    fn spec() -> RunSpec {
        RunSpec::new(
            "uts",
            Scale::Tiny,
            DesignPoint::accel(PointArch::Flex, 2, 4),
        )
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Submit {
                tenant: "alice".to_owned(),
                kind: JobKind::Dse,
                spec: Box::new(spec()),
            },
            Request::Status,
            Request::Stats,
            Request::Pause,
            Request::Resume,
            Request::Shutdown,
        ];
        for r in requests {
            let line = r.to_json();
            let back = Request::from_json(&line).unwrap();
            assert_eq!(back, r);
            assert_eq!(back.to_json(), line, "canonical rendering is stable");
        }
    }

    #[test]
    fn malformed_requests_get_typed_codes() {
        let cases = [
            ("{not json", ErrorCode::BadJson),
            ("[1,2]", ErrorCode::BadRequest),
            ("{\"po\":\"submit\"}", ErrorCode::BadRequest),
            ("{\"op\":\"launch\"}", ErrorCode::UnknownOp),
            ("{\"op\":\"submit\"}", ErrorCode::BadRequest),
            (
                "{\"op\":\"submit\",\"tenant\":\"\",\"kind\":\"sim\",\"spec\":{}}",
                ErrorCode::BadRequest,
            ),
            (
                "{\"op\":\"submit\",\"tenant\":\"a\",\"kind\":\"warp\",\"spec\":{}}",
                ErrorCode::BadRequest,
            ),
            (
                "{\"op\":\"submit\",\"tenant\":\"a\",\"kind\":\"sim\",\"spec\":{}}",
                ErrorCode::BadSpec,
            ),
            (
                "{\"op\":\"submit\",\"tenant\":\"a\",\"kind\":\"sim\",\"spec\":{\"benchmark\":\"uts\",\"scale\":\"huge\"}}",
                ErrorCode::BadSpec,
            ),
        ];
        for (line, code) in cases {
            let err = Request::from_json(line).unwrap_err();
            assert_eq!(err.code, code, "{line} → {err}");
            assert!(!err.message.is_empty());
        }
    }

    #[test]
    fn unknown_op_rejection_names_the_op() {
        for op in ["launch", "emit", "stat"] {
            let err = Request::from_json(&format!("{{\"op\":\"{op}\"}}")).unwrap_err();
            assert_eq!(err.code, ErrorCode::UnknownOp);
            assert!(
                err.message.contains(&format!("\"{op}\"")),
                "message {:?} should quote the offending op {op:?}",
                err.message
            );
        }
    }

    #[test]
    fn stats_rendering_is_canonical() {
        let e = JobEvent::Stats {
            tenants: vec![("a".to_owned(), 1), ("b".to_owned(), 0)],
            queued: 1,
            running: 0,
            completed: 0,
            failed: 0,
            recovered: 0,
            resumed: 0,
            preempted: 0,
            journal_torn: 0,
            journal: false,
            paused: false,
            draining: false,
        };
        assert_eq!(
            e.to_json(),
            "{\"event\":\"stats\",\"tenants\":{\"a\":1,\"b\":0},\"queued\":1,\
             \"running\":0,\"completed\":0,\"failed\":0,\"recovered\":0,\
             \"resumed\":0,\"preempted\":0,\"journal_torn\":0,\
             \"journal\":false,\"paused\":false,\"draining\":false}"
        );
    }

    #[test]
    fn events_round_trip() {
        let m = Measurement {
            kernel_ps: 123,
            whole_ps: 456,
            energy_j: 0.1 + 0.2, // deliberately ugly f64
            lut: 7,
            bram18: 0,
        };
        let events = [
            JobEvent::Accepted {
                job: JobId(1),
                tenant: "a".to_owned(),
                key: "00baadf00dcafe99".to_owned(),
            },
            JobEvent::Queued {
                job: JobId(1),
                position: 3,
            },
            JobEvent::Running { job: JobId(1) },
            JobEvent::Metrics {
                job: JobId(1),
                kernel_ps: 5,
                steal_attempts: 6,
                dram_bytes: 7,
                trace_events: 0,
            },
            JobEvent::Done {
                job: JobId(1),
                cached: true,
                result: m,
                trace_events: None,
                resumed_from_cycle: None,
            },
            JobEvent::Done {
                job: JobId(2),
                cached: false,
                result: m,
                trace_events: Some(42),
                resumed_from_cycle: Some(200_000),
            },
            JobEvent::Preempted {
                job: JobId(2),
                cycle: 100_000,
            },
            JobEvent::Failed {
                job: JobId(3),
                error: "uts on flex/8u failed: watchdog".to_owned(),
            },
            JobEvent::Error {
                code: ErrorCode::QuotaExceeded,
                message: "tenant a has 64 queued jobs".to_owned(),
            },
            JobEvent::Status {
                queued: 1,
                running: 2,
                completed: 3,
                failed: 0,
                paused: false,
                draining: true,
            },
            JobEvent::Stats {
                tenants: vec![("alice".to_owned(), 2), ("bob".to_owned(), 0)],
                queued: 2,
                running: 1,
                completed: 5,
                failed: 1,
                recovered: 3,
                resumed: 2,
                preempted: 4,
                journal_torn: 1,
                journal: true,
                paused: false,
                draining: false,
            },
            JobEvent::Stats {
                tenants: Vec::new(),
                queued: 0,
                running: 0,
                completed: 0,
                failed: 0,
                recovered: 0,
                resumed: 0,
                preempted: 0,
                journal_torn: 0,
                journal: false,
                paused: true,
                draining: true,
            },
            JobEvent::Progress {
                job: JobId(7),
                cycle: 100_000,
                tasks: 4_096,
                tasks_per_sec: 8_192_000,
            },
            JobEvent::Drained { completed: 9 },
        ];
        for e in events {
            let line = e.to_json();
            let back = JobEvent::from_json(&line).unwrap();
            assert_eq!(back, e);
            assert_eq!(back.to_json(), line, "canonical rendering is stable");
        }
    }

    #[test]
    fn measurement_payloads_are_byte_stable() {
        let m = Measurement {
            kernel_ps: u64::MAX,
            whole_ps: 1,
            energy_j: 1.0 / 3.0,
            lut: 0,
            bram18: 0,
        };
        let a = measurement_to_json_value(&m).to_json();
        let parsed = measurement_from_json_value(&JsonValue::parse(&a).unwrap()).unwrap();
        assert_eq!(parsed.energy_j.to_bits(), m.energy_j.to_bits());
        assert_eq!(parsed.kernel_ps, u64::MAX, "u64::MAX survives (raw token)");
        assert_eq!(measurement_to_json_value(&parsed).to_json(), a);
    }

    #[test]
    fn bad_events_name_the_field() {
        assert!(JobEvent::from_json("{\"event\":\"queued\"}")
            .unwrap_err()
            .contains("missing field job"));
        assert!(JobEvent::from_json("{\"event\":\"nope\"}")
            .unwrap_err()
            .contains("unknown event"));
        assert!(JobEvent::from_json("{}").unwrap_err().contains("'event'"));
    }
}
