//! The typed client: a blocking connection that submits specs and reads
//! the server's event stream.
//!
//! One connection is one ordered stream: the server interleaves events
//! from all of this client's jobs onto it in emission order. Helpers that
//! wait for a particular reply ([`Client::submit`], [`Client::wait`],
//! [`Client::status`]) buffer any other events they read past, and
//! [`Client::next_event`] drains that buffer first — no event is ever
//! dropped.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

use pxl_flow::RunSpec;

use crate::protocol::{ErrorCode, JobEvent, JobId, JobKind, Request};

/// Why a client call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The connection failed or closed.
    Io(String),
    /// The server sent something that does not parse as a [`JobEvent`].
    Protocol(String),
    /// The server rejected the request with a typed error event.
    Rejected {
        /// The machine-checkable rejection reason.
        code: ErrorCode,
        /// What was wrong.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Rejected { code, message } => {
                write!(f, "rejected ({}): {message}", code.label())
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// The counters a [`Client::status`] round-trip returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatusSnapshot {
    /// Jobs waiting across all tenant queues.
    pub queued: u64,
    /// Jobs currently executing.
    pub running: u64,
    /// Jobs finished successfully since startup.
    pub completed: u64,
    /// Jobs failed since startup.
    pub failed: u64,
    /// Whether dispatch is paused.
    pub paused: bool,
    /// Whether the server is draining.
    pub draining: bool,
}

/// A blocking connection to a [`crate::Server`].
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    pending: VecDeque<(JobEvent, String)>,
}

impl Client {
    /// Connects to a server's [`crate::Server::addr`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the connection fails.
    pub fn connect(addr: SocketAddr) -> Result<Client, ClientError> {
        let writer = TcpStream::connect(addr).map_err(|e| ClientError::Io(e.to_string()))?;
        let reading = writer
            .try_clone()
            .map_err(|e| ClientError::Io(e.to_string()))?;
        Ok(Client {
            writer,
            reader: BufReader::new(reading),
            pending: VecDeque::new(),
        })
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        writeln!(self.writer, "{}", request.to_json())
            .and_then(|()| self.writer.flush())
            .map_err(|e| ClientError::Io(e.to_string()))
    }

    fn read_event(&mut self) -> Result<(JobEvent, String), ClientError> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| ClientError::Io(e.to_string()))?;
            if n == 0 {
                return Err(ClientError::Io("server closed the connection".to_owned()));
            }
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if trimmed.is_empty() {
                continue;
            }
            let event = JobEvent::from_json(trimmed).map_err(ClientError::Protocol)?;
            return Ok((event, trimmed.to_owned()));
        }
    }

    /// The next event on this connection with its raw wire line (oldest
    /// buffered event first). Blocks until one arrives.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on disconnect, [`ClientError::Protocol`] on an
    /// unparseable line.
    pub fn next_event_raw(&mut self) -> Result<(JobEvent, String), ClientError> {
        if let Some(buffered) = self.pending.pop_front() {
            return Ok(buffered);
        }
        self.read_event()
    }

    /// [`Client::next_event_raw`] without the raw line.
    ///
    /// # Errors
    ///
    /// Same as [`Client::next_event_raw`].
    pub fn next_event(&mut self) -> Result<JobEvent, ClientError> {
        self.next_event_raw().map(|(event, _)| event)
    }

    /// Submits one spec as a job under `tenant`, returning the assigned id
    /// and the content address of its cache identity. Events of other jobs
    /// arriving meanwhile are buffered; the new job's `queued` event stays
    /// in the stream for [`Client::next_event`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] with the server's typed error code
    /// (`quota_exceeded`, `draining`, ...), or a transport failure.
    pub fn submit_with_key(
        &mut self,
        tenant: &str,
        kind: JobKind,
        spec: &RunSpec,
    ) -> Result<(JobId, String), ClientError> {
        self.send(&Request::Submit {
            tenant: tenant.to_owned(),
            kind,
            spec: spec.clone(),
        })?;
        loop {
            let (event, raw) = self.read_event()?;
            match event {
                JobEvent::Accepted { job, key, .. } => return Ok((job, key)),
                JobEvent::Error { code, message } => {
                    return Err(ClientError::Rejected { code, message })
                }
                other => self.pending.push_back((other, raw)),
            }
        }
    }

    /// [`Client::submit_with_key`] without the content address.
    ///
    /// # Errors
    ///
    /// Same as [`Client::submit_with_key`].
    pub fn submit(
        &mut self,
        tenant: &str,
        kind: JobKind,
        spec: &RunSpec,
    ) -> Result<JobId, ClientError> {
        self.submit_with_key(tenant, kind, spec).map(|(job, _)| job)
    }

    /// Reads until `job`'s terminal event ([`JobEvent::Done`] or
    /// [`JobEvent::Failed`]) and returns it with its raw wire line.
    /// Checks the pending buffer first; other events read past are
    /// buffered in arrival order.
    ///
    /// # Errors
    ///
    /// A transport or protocol failure. A *failed job* is not an `Err`:
    /// the caller gets the [`JobEvent::Failed`] event.
    pub fn wait_raw(&mut self, job: JobId) -> Result<(JobEvent, String), ClientError> {
        if let Some(at) = self.pending.iter().position(|(e, _)| {
            matches!(e,
                JobEvent::Done { job: j, .. } | JobEvent::Failed { job: j, .. } if *j == job)
        }) {
            return Ok(self.pending.remove(at).expect("position is in range"));
        }
        loop {
            let (event, raw) = self.read_event()?;
            match &event {
                JobEvent::Done { job: j, .. } | JobEvent::Failed { job: j, .. } if *j == job => {
                    return Ok((event, raw))
                }
                _ => self.pending.push_back((event, raw)),
            }
        }
    }

    /// [`Client::wait_raw`] without the raw line.
    ///
    /// # Errors
    ///
    /// Same as [`Client::wait_raw`].
    pub fn wait(&mut self, job: JobId) -> Result<JobEvent, ClientError> {
        self.wait_raw(job).map(|(event, _)| event)
    }

    fn await_status(&mut self) -> Result<StatusSnapshot, ClientError> {
        loop {
            let (event, raw) = self.read_event()?;
            match event {
                JobEvent::Status {
                    queued,
                    running,
                    completed,
                    failed,
                    paused,
                    draining,
                } => {
                    return Ok(StatusSnapshot {
                        queued,
                        running,
                        completed,
                        failed,
                        paused,
                        draining,
                    })
                }
                other => self.pending.push_back((other, raw)),
            }
        }
    }

    /// Asks for the server's counters.
    ///
    /// # Errors
    ///
    /// A transport or protocol failure.
    pub fn status(&mut self) -> Result<StatusSnapshot, ClientError> {
        self.send(&Request::Status)?;
        self.await_status()
    }

    /// Pauses dispatch (running jobs finish; queued jobs wait). The
    /// returned snapshot acknowledges the flag.
    ///
    /// # Errors
    ///
    /// A transport or protocol failure.
    pub fn pause(&mut self) -> Result<StatusSnapshot, ClientError> {
        self.send(&Request::Pause)?;
        self.await_status()
    }

    /// Resumes dispatch. The returned snapshot acknowledges the flag.
    ///
    /// # Errors
    ///
    /// A transport or protocol failure.
    pub fn resume(&mut self) -> Result<StatusSnapshot, ClientError> {
        self.send(&Request::Resume)?;
        self.await_status()
    }

    /// Requests a graceful drain and blocks until the server's
    /// [`JobEvent::Drained`] arrives, returning the lifetime completed
    /// count. Events of still-finishing jobs arriving meanwhile are
    /// buffered and remain readable via [`Client::next_event`].
    ///
    /// # Errors
    ///
    /// A transport or protocol failure.
    pub fn drain(&mut self) -> Result<u64, ClientError> {
        self.send(&Request::Shutdown)?;
        loop {
            let (event, raw) = self.read_event()?;
            match event {
                JobEvent::Drained { completed } => return Ok(completed),
                other => self.pending.push_back((other, raw)),
            }
        }
    }
}
