//! The typed client: a blocking connection that submits specs and reads
//! the server's event stream.
//!
//! One connection is one ordered stream: the server interleaves events
//! from all of this client's jobs onto it in emission order. Helpers that
//! wait for a particular reply ([`Client::submit`], [`Client::wait`],
//! [`Client::status`]) buffer any other events they read past, and
//! [`Client::next_event`] drains that buffer first — no event is ever
//! dropped.
//!
//! [`Client::connect`] blocks indefinitely, which suits tests driving a
//! server they own. Against a server that can crash and restart (the
//! crash-recovery smoke, CI), use [`Client::connect_with`]: it bounds the
//! connect and read times ([`ClientError::TimedOut`] instead of hanging)
//! and retries refused connections with bounded exponential backoff and
//! deterministic, seeded jitter — so a fleet of restarting clients does
//! not reconnect in lockstep, yet every run of the harness behaves the
//! same.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use pxl_flow::RunSpec;
use pxl_sim::XorShift64;

use crate::protocol::{ErrorCode, JobEvent, JobId, JobKind, Request};

/// Why a client call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The connection failed or closed.
    Io(String),
    /// A bounded connect or read exceeded its [`ClientConfig`] deadline.
    TimedOut(String),
    /// The server sent something that does not parse as a [`JobEvent`].
    Protocol(String),
    /// The server rejected the request with a typed error event.
    Rejected {
        /// The machine-checkable rejection reason.
        code: ErrorCode,
        /// What was wrong.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::TimedOut(e) => write!(f, "timed out: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Rejected { code, message } => {
                write!(f, "rejected ({}): {message}", code.label())
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// Connection tunables for [`Client::connect_with`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Deadline for one TCP connect attempt.
    pub connect_timeout: Duration,
    /// Deadline for one blocking read; `None` blocks forever (the
    /// [`Client::connect`] behaviour).
    pub read_timeout: Option<Duration>,
    /// Connect attempts before giving up (clamped to at least 1).
    pub connect_attempts: u32,
    /// Backoff before retry `n` is `backoff_base * 2^(n-1)` capped at
    /// [`ClientConfig::backoff_max`], half of it deterministic and half
    /// jittered by the seeded RNG ("equal jitter").
    pub backoff_base: Duration,
    /// Upper bound on one backoff sleep.
    pub backoff_max: Duration,
    /// Seed for the jitter RNG — same seed, same retry schedule.
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Some(Duration::from_secs(60)),
            connect_attempts: 8,
            backoff_base: Duration::from_millis(25),
            backoff_max: Duration::from_secs(2),
            jitter_seed: 0x9E3779B97F4A7C15,
        }
    }
}

impl ClientConfig {
    /// The backoff to sleep after failed attempt `attempt` (1-based):
    /// exponential in the attempt number, capped, with the upper half
    /// drawn from `rng`.
    fn backoff(&self, attempt: u32, rng: &mut XorShift64) -> Duration {
        let base = self.backoff_base.as_millis() as u64;
        let cap = self.backoff_max.as_millis() as u64;
        let exp = base
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(32))
            .min(cap);
        let half = exp / 2;
        let jitter = if half == 0 {
            0
        } else {
            rng.next_u64() % (half + 1)
        };
        Duration::from_millis(half + jitter)
    }
}

/// Maps one I/O failure to the typed client error, distinguishing
/// deadline expiry (`WouldBlock`/`TimedOut`, platform-dependent) from
/// real transport failures.
fn io_error(context: &str, e: &std::io::Error) -> ClientError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            ClientError::TimedOut(format!("{context}: {e}"))
        }
        _ => ClientError::Io(format!("{context}: {e}")),
    }
}

/// The counters a [`Client::status`] round-trip returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatusSnapshot {
    /// Jobs waiting across all tenant queues.
    pub queued: u64,
    /// Jobs currently executing.
    pub running: u64,
    /// Jobs finished successfully since startup.
    pub completed: u64,
    /// Jobs failed since startup.
    pub failed: u64,
    /// Whether dispatch is paused.
    pub paused: bool,
    /// Whether the server is draining.
    pub draining: bool,
}

/// The server-health picture a [`Client::stats`] round-trip returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Per-tenant queue depths, sorted by tenant name (drained tenants
    /// appear at depth 0).
    pub tenants: Vec<(String, u64)>,
    /// Jobs waiting across all tenant queues.
    pub queued: u64,
    /// Jobs currently executing.
    pub running: u64,
    /// Jobs finished successfully since startup.
    pub completed: u64,
    /// Jobs failed since startup.
    pub failed: u64,
    /// Jobs re-admitted from the journal at startup.
    pub recovered: u64,
    /// Execution legs resumed from a persisted checkpoint.
    pub resumed: u64,
    /// Cooperative yields at checkpoint boundaries.
    pub preempted: u64,
    /// Torn trailing journal lines discarded at recovery.
    pub journal_torn: u64,
    /// Whether a journal is attached (crash-safe mode).
    pub journal: bool,
    /// Whether dispatch is paused.
    pub paused: bool,
    /// Whether the server is draining.
    pub draining: bool,
}

/// One [`JobEvent::Progress`] beat, as handed to the
/// [`Client::wait_with_progress`] callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// The reporting job.
    pub job: JobId,
    /// Simulated cycles completed so far.
    pub cycle: u64,
    /// Tasks executed so far (accelerator + CPU).
    pub tasks: u64,
    /// Task throughput in tasks per simulated second.
    pub tasks_per_sec: u64,
}

/// A blocking connection to a [`crate::Server`].
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    pending: VecDeque<(JobEvent, String)>,
}

impl Client {
    /// Connects to a server's [`crate::Server::addr`]: one attempt, no
    /// deadlines (reads block until the server answers).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the connection fails.
    pub fn connect(addr: SocketAddr) -> Result<Client, ClientError> {
        let writer = TcpStream::connect(addr).map_err(|e| ClientError::Io(e.to_string()))?;
        Client::from_stream(writer)
    }

    /// Connects with bounded timeouts and retry: up to
    /// `config.connect_attempts` connect attempts, each bounded by
    /// `config.connect_timeout`, sleeping a capped, seeded-jitter
    /// exponential backoff between attempts. The returned client's reads
    /// are bounded by `config.read_timeout` and fail as
    /// [`ClientError::TimedOut`] instead of hanging — the behaviour a
    /// harness needs when the server may have crashed mid-answer.
    ///
    /// # Errors
    ///
    /// The last attempt's failure: [`ClientError::TimedOut`] when it hit
    /// the deadline, [`ClientError::Io`] when the connection was refused.
    pub fn connect_with(addr: SocketAddr, config: &ClientConfig) -> Result<Client, ClientError> {
        let attempts = config.connect_attempts.max(1);
        let mut rng = XorShift64::new(config.jitter_seed);
        let mut last = None;
        for attempt in 1..=attempts {
            match TcpStream::connect_timeout(&addr, config.connect_timeout) {
                Ok(stream) => {
                    stream
                        .set_read_timeout(config.read_timeout)
                        .map_err(|e| ClientError::Io(format!("set read timeout: {e}")))?;
                    return Client::from_stream(stream);
                }
                Err(e) => last = Some(io_error("connect", &e)),
            }
            if attempt < attempts {
                std::thread::sleep(config.backoff(attempt, &mut rng));
            }
        }
        Err(last.expect("at least one attempt was made"))
    }

    fn from_stream(writer: TcpStream) -> Result<Client, ClientError> {
        let reading = writer
            .try_clone()
            .map_err(|e| ClientError::Io(e.to_string()))?;
        Ok(Client {
            writer,
            reader: BufReader::new(reading),
            pending: VecDeque::new(),
        })
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        writeln!(self.writer, "{}", request.to_json())
            .and_then(|()| self.writer.flush())
            .map_err(|e| io_error("send", &e))
    }

    fn read_event(&mut self) -> Result<(JobEvent, String), ClientError> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| io_error("read", &e))?;
            if n == 0 {
                return Err(ClientError::Io("server closed the connection".to_owned()));
            }
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if trimmed.is_empty() {
                continue;
            }
            let event = JobEvent::from_json(trimmed).map_err(ClientError::Protocol)?;
            return Ok((event, trimmed.to_owned()));
        }
    }

    /// The next event on this connection with its raw wire line (oldest
    /// buffered event first). Blocks until one arrives.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on disconnect, [`ClientError::Protocol`] on an
    /// unparseable line.
    pub fn next_event_raw(&mut self) -> Result<(JobEvent, String), ClientError> {
        if let Some(buffered) = self.pending.pop_front() {
            return Ok(buffered);
        }
        self.read_event()
    }

    /// [`Client::next_event_raw`] without the raw line.
    ///
    /// # Errors
    ///
    /// Same as [`Client::next_event_raw`].
    pub fn next_event(&mut self) -> Result<JobEvent, ClientError> {
        self.next_event_raw().map(|(event, _)| event)
    }

    /// Submits one spec as a job under `tenant`, returning the assigned id
    /// and the content address of its cache identity. Events of other jobs
    /// arriving meanwhile are buffered; the new job's `queued` event stays
    /// in the stream for [`Client::next_event`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] with the server's typed error code
    /// (`quota_exceeded`, `draining`, ...), or a transport failure.
    pub fn submit_with_key(
        &mut self,
        tenant: &str,
        kind: JobKind,
        spec: &RunSpec,
    ) -> Result<(JobId, String), ClientError> {
        self.send(&Request::Submit {
            tenant: tenant.to_owned(),
            kind,
            spec: Box::new(spec.clone()),
        })?;
        loop {
            let (event, raw) = self.read_event()?;
            match event {
                JobEvent::Accepted { job, key, .. } => return Ok((job, key)),
                JobEvent::Error { code, message } => {
                    return Err(ClientError::Rejected { code, message })
                }
                other => self.pending.push_back((other, raw)),
            }
        }
    }

    /// [`Client::submit_with_key`] without the content address.
    ///
    /// # Errors
    ///
    /// Same as [`Client::submit_with_key`].
    pub fn submit(
        &mut self,
        tenant: &str,
        kind: JobKind,
        spec: &RunSpec,
    ) -> Result<JobId, ClientError> {
        self.submit_with_key(tenant, kind, spec).map(|(job, _)| job)
    }

    /// Reads until `job`'s terminal event ([`JobEvent::Done`] or
    /// [`JobEvent::Failed`]) and returns it with its raw wire line.
    /// Checks the pending buffer first; other events read past are
    /// buffered in arrival order.
    ///
    /// # Errors
    ///
    /// A transport or protocol failure. A *failed job* is not an `Err`:
    /// the caller gets the [`JobEvent::Failed`] event.
    pub fn wait_raw(&mut self, job: JobId) -> Result<(JobEvent, String), ClientError> {
        if let Some(at) = self.pending.iter().position(|(e, _)| {
            matches!(e,
                JobEvent::Done { job: j, .. } | JobEvent::Failed { job: j, .. } if *j == job)
        }) {
            return Ok(self.pending.remove(at).expect("position is in range"));
        }
        loop {
            let (event, raw) = self.read_event()?;
            match &event {
                JobEvent::Done { job: j, .. } | JobEvent::Failed { job: j, .. } if *j == job => {
                    return Ok((event, raw))
                }
                _ => self.pending.push_back((event, raw)),
            }
        }
    }

    /// [`Client::wait_raw`] without the raw line.
    ///
    /// # Errors
    ///
    /// Same as [`Client::wait_raw`].
    pub fn wait(&mut self, job: JobId) -> Result<JobEvent, ClientError> {
        self.wait_raw(job).map(|(event, _)| event)
    }

    /// [`Client::wait`] that hands `job`'s [`JobEvent::Progress`] beats to
    /// `on_progress` as they arrive (buffered ones first, in order)
    /// instead of burying them in the pending buffer. Events of other
    /// jobs read past remain readable via [`Client::next_event`].
    ///
    /// # Errors
    ///
    /// Same as [`Client::wait_raw`]. A failed job is not an `Err`: the
    /// caller gets the [`JobEvent::Failed`] event.
    pub fn wait_with_progress(
        &mut self,
        job: JobId,
        mut on_progress: impl FnMut(Progress),
    ) -> Result<JobEvent, ClientError> {
        let mut kept: Vec<(JobEvent, String)> = Vec::new();
        let terminal = loop {
            let next = match self.pending.pop_front() {
                Some(buffered) => buffered,
                None => match self.read_event() {
                    Ok(fresh) => fresh,
                    Err(e) => {
                        // Keep what was read past even on failure.
                        for k in kept.into_iter().rev() {
                            self.pending.push_front(k);
                        }
                        return Err(e);
                    }
                },
            };
            match &next.0 {
                JobEvent::Progress {
                    job: j,
                    cycle,
                    tasks,
                    tasks_per_sec,
                } if *j == job => on_progress(Progress {
                    job,
                    cycle: *cycle,
                    tasks: *tasks,
                    tasks_per_sec: *tasks_per_sec,
                }),
                JobEvent::Done { job: j, .. } | JobEvent::Failed { job: j, .. } if *j == job => {
                    break next.0;
                }
                _ => kept.push(next),
            }
        };
        for k in kept.into_iter().rev() {
            self.pending.push_front(k);
        }
        Ok(terminal)
    }

    fn await_status(&mut self) -> Result<StatusSnapshot, ClientError> {
        loop {
            let (event, raw) = self.read_event()?;
            match event {
                JobEvent::Status {
                    queued,
                    running,
                    completed,
                    failed,
                    paused,
                    draining,
                } => {
                    return Ok(StatusSnapshot {
                        queued,
                        running,
                        completed,
                        failed,
                        paused,
                        draining,
                    })
                }
                other => self.pending.push_back((other, raw)),
            }
        }
    }

    /// Asks for the server's counters.
    ///
    /// # Errors
    ///
    /// A transport or protocol failure.
    pub fn status(&mut self) -> Result<StatusSnapshot, ClientError> {
        self.send(&Request::Status)?;
        self.await_status()
    }

    /// Asks for the full server-health picture: per-tenant queue depths,
    /// lifecycle counters and journal state. Events of other jobs read
    /// past are buffered.
    ///
    /// # Errors
    ///
    /// A transport or protocol failure.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        self.send(&Request::Stats)?;
        loop {
            let (event, raw) = self.read_event()?;
            match event {
                JobEvent::Stats {
                    tenants,
                    queued,
                    running,
                    completed,
                    failed,
                    recovered,
                    resumed,
                    preempted,
                    journal_torn,
                    journal,
                    paused,
                    draining,
                } => {
                    return Ok(StatsSnapshot {
                        tenants,
                        queued,
                        running,
                        completed,
                        failed,
                        recovered,
                        resumed,
                        preempted,
                        journal_torn,
                        journal,
                        paused,
                        draining,
                    })
                }
                other => self.pending.push_back((other, raw)),
            }
        }
    }

    /// Pauses dispatch (running jobs finish; queued jobs wait). The
    /// returned snapshot acknowledges the flag.
    ///
    /// # Errors
    ///
    /// A transport or protocol failure.
    pub fn pause(&mut self) -> Result<StatusSnapshot, ClientError> {
        self.send(&Request::Pause)?;
        self.await_status()
    }

    /// Resumes dispatch. The returned snapshot acknowledges the flag.
    ///
    /// # Errors
    ///
    /// A transport or protocol failure.
    pub fn resume(&mut self) -> Result<StatusSnapshot, ClientError> {
        self.send(&Request::Resume)?;
        self.await_status()
    }

    /// Requests a graceful drain and blocks until the server's
    /// [`JobEvent::Drained`] arrives, returning the lifetime completed
    /// count. Events of still-finishing jobs arriving meanwhile are
    /// buffered and remain readable via [`Client::next_event`].
    ///
    /// # Errors
    ///
    /// A transport or protocol failure.
    pub fn drain(&mut self) -> Result<u64, ClientError> {
        self.send(&Request::Shutdown)?;
        loop {
            let (event, raw) = self.read_event()?;
            match event {
                JobEvent::Drained { completed } => return Ok(completed),
                other => self.pending.push_back((other, raw)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_exponential_and_deterministic() {
        let config = ClientConfig {
            backoff_base: Duration::from_millis(100),
            backoff_max: Duration::from_millis(400),
            jitter_seed: 42,
            ..ClientConfig::default()
        };
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut rng = XorShift64::new(seed);
            (1..=6).map(|n| config.backoff(n, &mut rng)).collect()
        };
        let a = schedule(42);
        // Equal-jitter: each sleep lies in [cap/2, cap] of its capped
        // exponential 100, 200, 400, 400, ...
        for (i, (d, cap)) in a.iter().zip([100u64, 200, 400, 400, 400, 400]).enumerate() {
            let ms = d.as_millis() as u64;
            assert!(
                ms >= cap / 2 && ms <= cap,
                "attempt {}: {ms}ms vs cap {cap}",
                i + 1
            );
        }
        assert_eq!(a, schedule(42), "same seed, same schedule");
        assert_ne!(a, schedule(43), "different seeds diverge");
    }

    #[test]
    fn bounded_reads_surface_timed_out() {
        // A listener that accepts and then says nothing.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let keep = std::thread::spawn(move || listener.accept());
        let config = ClientConfig {
            read_timeout: Some(Duration::from_millis(50)),
            connect_attempts: 1,
            ..ClientConfig::default()
        };
        let mut client = Client::connect_with(addr, &config).unwrap();
        let err = client.next_event().unwrap_err();
        assert!(matches!(err, ClientError::TimedOut(_)), "{err}");
        assert!(err.to_string().starts_with("timed out"));
        drop(client);
        let _ = keep.join();
    }

    #[test]
    fn refused_connections_retry_then_fail_typed() {
        // Bind and drop to get a port that refuses connections.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let config = ClientConfig {
            connect_attempts: 3,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(4),
            ..ClientConfig::default()
        };
        let err = match Client::connect_with(addr, &config) {
            Err(e) => e,
            Ok(_) => panic!("connect to a dropped listener must fail"),
        };
        assert!(
            matches!(err, ClientError::Io(_) | ClientError::TimedOut(_)),
            "{err}"
        );
    }
}
