//! The job server: a threaded TCP loop that admits [`Request`]s, schedules
//! jobs fairly across tenants, executes them on a [`WorkerPool`], dedupes
//! identical work through the content-addressed [`ResultCache`], and
//! streams [`JobEvent`]s back as they happen.
//!
//! # Lifecycle of a job
//!
//! `submit` → write-ahead journal record → `accepted` + `queued` →
//! (dispatcher picks it, fair-share) → `running` → either a cache hit
//! (`done` with `cached:true`, no simulation) or a simulation leg. A leg
//! with a [`CheckpointPolicy`](pxl_flow::CheckpointPolicy) pauses at every
//! epoch boundary, persists a [`Snapshot`], and — if another job is
//! waiting for the worker — yields cooperatively (`preempted` event, back
//! to the queue quota-exempt). The final leg ends in `metrics` + `done`
//! carrying `resumed_from_cycle` when it was not the first leg.
//!
//! # Crash safety
//!
//! The job log doubles as a write-ahead journal (see [`crate::journal`]):
//! submissions are journaled before they are acknowledged, checkpoints
//! after they are durable, and the emitted `done`/`failed` events mark
//! jobs terminal. On restart with the same `job_log`, admitted-but-
//! unfinished jobs are rehydrated (detached from their vanished clients)
//! and resume from their latest loadable checkpoint — or from cycle 0 if
//! none survives. Completion is exactly-once: a job either reached its
//! terminal event before the crash or it runs (once) after recovery.
//!
//! # Threads
//!
//! One accept loop, one reader thread per connection, one dispatcher, and
//! `workers` simulation threads (a [`pxl_sim::pool::WorkerPool`]). All
//! shared state lives in one mutex; the dispatcher wakes on a condvar
//! whenever the queue, pause flag, or in-flight count changes. Simulations
//! run without the lock held.

use std::collections::HashMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use pxl_dse::{Measurement, ResultCache};
use pxl_flow::{FlowError, RunError, RunSpec, SessionStatus, SimSession};
use pxl_sim::pool::WorkerPool;
use pxl_sim::{Metrics, Snapshot};

use crate::journal::{self, Journal};
use crate::protocol::{ErrorCode, JobEvent, JobId, JobKind, Request};
use crate::sched::FairQueue;

/// Trace capacity forced onto profile jobs whose spec does not request
/// tracing (a profile job's artifact *is* the trace).
const PROFILE_TRACE_CAPACITY: usize = 1 << 16;

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Simulation worker threads (clamped to at least 1).
    pub workers: usize,
    /// Max queued jobs per tenant before submissions are refused with
    /// `quota_exceeded`.
    pub tenant_quota: usize,
    /// Persist the result cache to this JSONL file (`None` = in-memory).
    pub cache_path: Option<PathBuf>,
    /// The job log *and* write-ahead journal: every emitted [`JobEvent`]
    /// plus the journal records, one JSON line each, opened in append
    /// mode so restarts recover from it (`None` = no log, no recovery).
    pub job_log: Option<PathBuf>,
    /// Durable checkpoints land here as `job-<id>.ckpt.json` (`None` =
    /// checkpoints stay in memory: preemption still works, but crash
    /// recovery restarts jobs from cycle 0).
    pub checkpoint_dir: Option<PathBuf>,
    /// Fsync the journal after every record (the default). Turning it
    /// off trades the power-loss guarantee for fewer syscalls.
    pub flush_every_record: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            tenant_quota: 64,
            cache_path: None,
            job_log: None,
            checkpoint_dir: None,
            flush_every_record: true,
        }
    }
}

/// Lifetime totals reported by [`Server::join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs that finished successfully (cached or fresh).
    pub completed: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Result-cache hits (jobs answered without simulating).
    pub cache_hits: u64,
    /// Result-cache misses (jobs that ran a simulation).
    pub cache_misses: u64,
    /// Jobs rehydrated from the journal at startup.
    pub recovered: u64,
    /// Simulation legs that resumed from a checkpoint.
    pub resumed: u64,
    /// Cooperative yields at checkpoint boundaries.
    pub preempted: u64,
    /// Unparseable journal lines tolerated at startup (the torn tail of
    /// a crashed write).
    pub journal_torn: u64,
}

type Writer = Arc<Mutex<TcpStream>>;

struct Job {
    kind: JobKind,
    tenant: String,
    spec: RunSpec,
    key: String,
    /// `None` for jobs rehydrated from the journal — their submitter is
    /// gone, but every event still reaches the job log.
    client: Option<Writer>,
    /// The checkpoint the next leg resumes from: `(cycle, snapshot)`.
    resume: Option<(u64, Snapshot)>,
}

struct Core {
    queue: FairQueue,
    jobs: HashMap<u64, Job>,
    cache: ResultCache,
    next_job: u64,
    paused: bool,
    draining: bool,
    stopped: bool,
    inflight: usize,
    completed: u64,
    failed: u64,
    recovered: u64,
    resumed: u64,
    preempted: u64,
    journal_torn: u64,
    drain_waiters: Vec<Writer>,
    journal: Option<Journal>,
    checkpoint_dir: Option<PathBuf>,
}

impl Core {
    fn log_line(&mut self, line: &str) {
        if let Some(j) = &mut self.journal {
            j.record(line);
        }
    }

    fn status_event(&self) -> JobEvent {
        JobEvent::Status {
            queued: self.queue.len() as u64,
            running: self.inflight as u64,
            completed: self.completed,
            failed: self.failed,
            paused: self.paused,
            draining: self.draining,
        }
    }

    /// The full health picture for [`Request::Stats`]: tenants come out of
    /// the queue name-sorted, so identical states render byte-identically.
    fn stats_event(&self) -> JobEvent {
        JobEvent::Stats {
            tenants: self.queue.depths(),
            queued: self.queue.len() as u64,
            running: self.inflight as u64,
            completed: self.completed,
            failed: self.failed,
            recovered: self.recovered,
            resumed: self.resumed,
            preempted: self.preempted,
            journal_torn: self.journal_torn,
            journal: self.journal.is_some(),
            paused: self.paused,
            draining: self.draining,
        }
    }
}

struct Shared {
    core: Mutex<Core>,
    work: Condvar,
}

fn send_line(writer: &Writer, line: &str) {
    // A vanished client must not take the server down; its events are
    // still in the job log.
    let mut stream = writer.lock().expect("writer mutex");
    let _ = writeln!(stream, "{line}");
    let _ = stream.flush();
}

/// [`send_line`] for jobs that may have no client (journal-recovered).
fn maybe_send(writer: &Option<Writer>, line: &str) {
    if let Some(w) = writer {
        send_line(w, line);
    }
}

/// Logs (under the core lock) then sends each event, preserving order.
fn emit(shared: &Shared, writer: &Writer, events: &[JobEvent]) {
    let lines: Vec<String> = events.iter().map(JobEvent::to_json).collect();
    {
        let mut core = shared.core.lock().expect("core mutex");
        for line in &lines {
            core.log_line(line);
        }
    }
    for line in &lines {
        send_line(writer, line);
    }
}

/// The cache identity of a submission: the job kind qualifying the spec's
/// canonical string (a `sim` and a `dse` of the same spec differ in their
/// resource columns, so they must not share a cache slot).
pub fn cache_key(kind: JobKind, spec: &RunSpec) -> String {
    format!("serve kind={} {}", kind.label(), spec.canonical())
}

/// The snapshot file name for a job inside the checkpoint directory.
fn checkpoint_file_name(job: JobId) -> String {
    format!("job-{}.ckpt.json", job.0)
}

/// Loads one snapshot file. Any failure — missing file, torn write,
/// corrupted checksum, foreign format version — means the job restarts
/// from cycle 0 rather than refusing recovery.
fn load_checkpoint(dir: &Path, file: &str) -> Option<Snapshot> {
    let text = std::fs::read_to_string(dir.join(file)).ok()?;
    Snapshot::from_json(&text).ok()
}

/// A running job server bound to a loopback port.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    dispatcher: JoinHandle<()>,
}

impl Server {
    /// Binds `127.0.0.1:0` (an OS-assigned port — this is a local harness,
    /// not an internet-facing daemon) and starts the accept loop, the
    /// dispatcher and the simulation pool. When `job_log` names an
    /// existing journal, unfinished jobs from previous lifetimes are
    /// re-queued first (in id order, quota-exempt) and resume from their
    /// latest loadable checkpoint.
    ///
    /// # Errors
    ///
    /// The bind failure or a cache/journal/checkpoint-dir file failure,
    /// as a message.
    pub fn start(config: ServerConfig) -> Result<Server, String> {
        let listener =
            TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind 127.0.0.1:0: {e}"))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        let cache = match &config.cache_path {
            Some(path) => ResultCache::open(path)?,
            None => ResultCache::in_memory(),
        };
        // Replay BEFORE opening for append, so recovery sees exactly the
        // previous lifetimes' records.
        let (journal, recovery) = match &config.job_log {
            Some(path) => {
                let recovery = journal::replay(path);
                (
                    Some(Journal::open(path, config.flush_every_record)?),
                    recovery,
                )
            }
            None => (None, journal::Recovery::default()),
        };
        if let Some(dir) = &config.checkpoint_dir {
            std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        }

        let mut queue = FairQueue::new(config.tenant_quota);
        let mut jobs = HashMap::new();
        let recovered = recovery.jobs.len() as u64;
        for r in recovery.jobs {
            let resume = r.checkpoint.as_ref().and_then(|(cycle, file)| {
                let snap = load_checkpoint(config.checkpoint_dir.as_deref()?, file)?;
                Some((*cycle, snap))
            });
            let key = cache_key(r.kind, &r.spec);
            queue.restore(&r.tenant, JobId(r.job));
            jobs.insert(
                r.job,
                Job {
                    kind: r.kind,
                    tenant: r.tenant,
                    spec: r.spec,
                    key,
                    client: None,
                    resume,
                },
            );
        }

        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            core: Mutex::new(Core {
                queue,
                jobs,
                cache,
                next_job: recovery.next_job.max(1),
                paused: false,
                draining: false,
                stopped: false,
                inflight: 0,
                completed: 0,
                failed: 0,
                recovered,
                resumed: 0,
                preempted: 0,
                journal_torn: recovery.torn_lines,
                drain_waiters: Vec::new(),
                journal,
                checkpoint_dir: config.checkpoint_dir.clone(),
            }),
            work: Condvar::new(),
        });

        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("pxl-serve-dispatch".to_owned())
                .spawn(move || dispatch_loop(&shared, workers, addr))
                .map_err(|e| format!("spawn dispatcher: {e}"))?
        };
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("pxl-serve-accept".to_owned())
                .spawn(move || accept_loop(&listener, &shared))
                .map_err(|e| format!("spawn accept loop: {e}"))?
        };
        Ok(Server {
            addr,
            shared,
            accept,
            dispatcher,
        })
    }

    /// The bound loopback address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Crash-safety counters as a metrics registry (name-ordered when
    /// rendered): `server.journal_torn`, `server.preemptions`,
    /// `server.recovered_jobs`, `server.resumed_legs`.
    pub fn metrics(&self) -> Metrics {
        let core = self.shared.core.lock().expect("core mutex");
        let mut m = Metrics::new();
        m.add("server.journal_torn", core.journal_torn);
        m.add("server.preemptions", core.preempted);
        m.add("server.recovered_jobs", core.recovered);
        m.add("server.resumed_legs", core.resumed);
        m
    }

    /// Waits for a graceful drain (a client's `shutdown` request) to finish
    /// and returns the lifetime totals. Blocks until then.
    ///
    /// # Panics
    ///
    /// Panics if a server thread panicked.
    pub fn join(self) -> ServeSummary {
        self.dispatcher.join().expect("dispatcher thread panicked");
        self.accept.join().expect("accept thread panicked");
        let core = self.shared.core.lock().expect("core mutex");
        ServeSummary {
            completed: core.completed,
            failed: core.failed,
            cache_hits: core.cache.hits() as u64,
            cache_misses: core.cache.misses() as u64,
            recovered: core.recovered,
            resumed: core.resumed,
            preempted: core.preempted,
            journal_torn: core.journal_torn,
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.core.lock().expect("core mutex").stopped {
            break;
        }
        let Ok(stream) = conn else { continue };
        let shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("pxl-serve-conn".to_owned())
            .spawn(move || serve_connection(stream, &shared));
        if spawned.is_err() {
            continue;
        }
    }
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) {
    use std::io::BufRead;
    let Ok(reading) = stream.try_clone() else {
        return;
    };
    let writer: Writer = Arc::new(Mutex::new(stream));
    let reader = std::io::BufReader::new(reading);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match Request::from_json(&line) {
            Err(e) => emit(
                shared,
                &writer,
                &[JobEvent::Error {
                    code: e.code,
                    message: e.message,
                }],
            ),
            Ok(request) => handle_request(shared, &writer, request),
        }
    }
}

fn handle_request(shared: &Arc<Shared>, writer: &Writer, request: Request) {
    match request {
        Request::Submit { tenant, kind, spec } => {
            let key = cache_key(kind, &spec);
            let mut core = shared.core.lock().expect("core mutex");
            if core.draining {
                drop(core);
                emit(
                    shared,
                    writer,
                    &[JobEvent::Error {
                        code: ErrorCode::Draining,
                        message: "the server is draining and accepts no new jobs".to_owned(),
                    }],
                );
                return;
            }
            let id = core.next_job;
            match core.queue.enqueue(&tenant, JobId(id)) {
                Err(quota) => {
                    drop(core);
                    emit(
                        shared,
                        writer,
                        &[JobEvent::Error {
                            code: ErrorCode::QuotaExceeded,
                            message: quota.to_string(),
                        }],
                    );
                }
                Ok(position) => {
                    core.next_job += 1;
                    // Write-ahead: the journal knows about the job before
                    // the client does, so an ack implies recoverability.
                    let record = journal::submit_line(id, &tenant, kind, &spec);
                    core.log_line(&record);
                    core.jobs.insert(
                        id,
                        Job {
                            kind,
                            tenant: tenant.clone(),
                            spec: *spec,
                            key: key.clone(),
                            client: Some(Arc::clone(writer)),
                            resume: None,
                        },
                    );
                    let events = [
                        JobEvent::Accepted {
                            job: JobId(id),
                            tenant,
                            key: ResultCache::address(&key),
                        },
                        JobEvent::Queued {
                            job: JobId(id),
                            position: position as u64,
                        },
                    ];
                    for e in &events {
                        core.log_line(&e.to_json());
                    }
                    drop(core);
                    shared.work.notify_all();
                    for e in &events {
                        send_line(writer, &e.to_json());
                    }
                }
            }
        }
        Request::Status => {
            let event = {
                let mut core = shared.core.lock().expect("core mutex");
                let event = core.status_event();
                core.log_line(&event.to_json());
                event
            };
            send_line(writer, &event.to_json());
        }
        Request::Stats => {
            let event = {
                let mut core = shared.core.lock().expect("core mutex");
                let event = core.stats_event();
                core.log_line(&event.to_json());
                event
            };
            send_line(writer, &event.to_json());
        }
        Request::Pause | Request::Resume => {
            let event = {
                let mut core = shared.core.lock().expect("core mutex");
                core.paused = matches!(request, Request::Pause);
                let event = core.status_event();
                core.log_line(&event.to_json());
                event
            };
            shared.work.notify_all();
            send_line(writer, &event.to_json());
        }
        Request::Shutdown => {
            let mut core = shared.core.lock().expect("core mutex");
            core.draining = true;
            core.drain_waiters.push(Arc::clone(writer));
            drop(core);
            shared.work.notify_all();
        }
    }
}

fn dispatch_loop(shared: &Arc<Shared>, workers: usize, addr: SocketAddr) {
    let pool = WorkerPool::new(workers);
    let mut core = shared.core.lock().expect("core mutex");
    loop {
        if core.draining && core.queue.is_empty() && core.inflight == 0 {
            let event = JobEvent::Drained {
                completed: core.completed,
            };
            core.log_line(&event.to_json());
            core.stopped = true;
            let waiters = std::mem::take(&mut core.drain_waiters);
            drop(core);
            for w in &waiters {
                send_line(w, &event.to_json());
            }
            // The accept loop is blocked in accept(); poke it so it sees
            // the stopped flag and exits.
            let _ = TcpStream::connect(addr);
            break;
        }
        if !core.paused && core.inflight < workers {
            if let Some(job_id) = core.queue.pop() {
                core.inflight += 1;
                let client = core
                    .jobs
                    .get(&job_id.0)
                    .expect("queued job is registered")
                    .client
                    .clone();
                let running = JobEvent::Running { job: job_id };
                core.log_line(&running.to_json());
                drop(core);
                maybe_send(&client, &running.to_json());
                let task_shared = Arc::clone(shared);
                pool.submit(move || run_job(&task_shared, job_id));
                core = shared.core.lock().expect("core mutex");
                continue;
            }
        }
        core = shared.work.wait(core).expect("core mutex");
    }
    // Drain condition guarantees no jobs are in flight here, so this
    // returns promptly.
    pool.shutdown();
}

/// How one scheduling leg of a job ended.
enum Verdict {
    /// The simulation completed (or the cache answered).
    Done {
        result: Measurement,
        trace_events: Option<u64>,
        metrics: Option<JobEvent>,
        resumed_from_cycle: Option<u64>,
    },
    /// The leg yielded at a checkpoint boundary because another job was
    /// waiting for the worker.
    Preempted {
        cycle: u64,
        snapshot: Snapshot,
    },
    Failed(String),
}

/// Runs one scheduling leg of a job and applies its outcome: terminal
/// events for `Done`/`Failed`, re-queue + `preempted` event for a yield.
fn run_job(shared: &Arc<Shared>, job_id: JobId) {
    let (spec, kind, key, client, resume, hit) = {
        let mut core = shared.core.lock().expect("core mutex");
        let job = core
            .jobs
            .get_mut(&job_id.0)
            .expect("running job is registered");
        let spec = job.spec.clone();
        let kind = job.kind;
        let key = job.key.clone();
        let client = job.client.clone();
        let resume = job.resume.take();
        // Profile jobs always execute: their artifact is the trace, which
        // the measurement cache does not store.
        let hit = if kind == JobKind::Profile {
            None
        } else {
            core.cache.get(&key)
        };
        (spec, kind, key, client, resume, hit)
    };

    let cached = hit.is_some();
    let resumed_leg = resume.is_some();
    let verdict = match hit {
        Some(result) => Verdict::Done {
            result,
            trace_events: None,
            metrics: None,
            resumed_from_cycle: None,
        },
        None => execute_leg(shared, job_id, &spec, kind, resume, &client),
    };

    match verdict {
        Verdict::Preempted { cycle, snapshot } => {
            let event = JobEvent::Preempted { job: job_id, cycle };
            {
                let mut core = shared.core.lock().expect("core mutex");
                if resumed_leg {
                    core.resumed += 1;
                }
                let job = core
                    .jobs
                    .get_mut(&job_id.0)
                    .expect("preempted job is registered");
                job.resume = Some((cycle, snapshot));
                let tenant = job.tenant.clone();
                core.queue.requeue_front(&tenant, job_id);
                core.inflight -= 1;
                core.preempted += 1;
                core.log_line(&event.to_json());
            }
            maybe_send(&client, &event.to_json());
            shared.work.notify_all();
        }
        Verdict::Done {
            result,
            trace_events,
            metrics,
            resumed_from_cycle,
        } => {
            let mut events: Vec<JobEvent> = Vec::new();
            let ckpt_dir = {
                let mut core = shared.core.lock().expect("core mutex");
                core.jobs.remove(&job_id.0);
                core.inflight -= 1;
                if !cached && kind != JobKind::Profile {
                    // Ignore a cache-persistence failure: the job itself
                    // succeeded and the client still gets its result.
                    let _ = core.cache.insert(&key, result);
                }
                core.completed += 1;
                if resumed_leg {
                    core.resumed += 1;
                }
                if let Some(m) = metrics {
                    events.push(m);
                }
                events.push(JobEvent::Done {
                    job: job_id,
                    cached,
                    result,
                    trace_events,
                    resumed_from_cycle,
                });
                for e in &events {
                    core.log_line(&e.to_json());
                }
                core.checkpoint_dir.clone()
            };
            // The terminal event is journaled; the snapshot file is now
            // dead weight.
            if let Some(dir) = ckpt_dir {
                let _ = std::fs::remove_file(dir.join(checkpoint_file_name(job_id)));
            }
            for e in &events {
                maybe_send(&client, &e.to_json());
            }
            shared.work.notify_all();
        }
        Verdict::Failed(error) => {
            let event = JobEvent::Failed { job: job_id, error };
            let ckpt_dir = {
                let mut core = shared.core.lock().expect("core mutex");
                core.jobs.remove(&job_id.0);
                core.inflight -= 1;
                core.failed += 1;
                if resumed_leg {
                    core.resumed += 1;
                }
                core.log_line(&event.to_json());
                core.checkpoint_dir.clone()
            };
            if let Some(dir) = ckpt_dir {
                let _ = std::fs::remove_file(dir.join(checkpoint_file_name(job_id)));
            }
            maybe_send(&client, &event.to_json());
            shared.work.notify_all();
        }
    }
}

/// Runs one simulation leg: from the job's start (or its latest
/// checkpoint) either to completion or to the first checkpoint boundary
/// at which another job is waiting for the worker. Each boundary reached
/// emits a [`JobEvent::Progress`] to the job's client (and the job log)
/// before deciding whether to yield.
fn execute_leg(
    shared: &Arc<Shared>,
    job_id: JobId,
    spec: &RunSpec,
    kind: JobKind,
    resume: Option<(u64, Snapshot)>,
    client: &Option<Writer>,
) -> Verdict {
    let run_spec = if kind == JobKind::Profile && spec.trace_capacity == 0 {
        spec.clone().with_trace(PROFILE_TRACE_CAPACITY)
    } else {
        spec.clone()
    };
    let resumed_from_cycle = resume.as_ref().map(|(c, _)| *c);
    let session = match &resume {
        Some((_, snap)) => SimSession::resume(&run_spec, snap),
        None => SimSession::start(&run_spec),
    };
    let mut session = match session {
        Err(e) => return Verdict::Failed(e.to_string()),
        Ok(None) => {
            return Verdict::Failed(
                RunError::Build(FlowError::NoLiteVariant(spec.benchmark.clone())).to_string(),
            )
        }
        Ok(Some(s)) => s,
    };
    let every = spec.checkpoint.map(|c| c.every_cycles);
    let clock = session.clock();
    // The next boundary: the first epoch multiple strictly beyond the
    // resume point.
    let mut boundary = every.map(|e| match resumed_from_cycle {
        Some(c) => (c / e + 1) * e,
        None => e,
    });
    loop {
        let pause = boundary.map(|b| clock.cycles_to_time(b));
        match session.advance(pause) {
            Err(e) => return Verdict::Failed(e.to_string()),
            Ok(SessionStatus::Finished(out)) => {
                // DSE jobs fold in the FPGA resource estimate; sim/profile
                // jobs (and CPU-baseline points, which have no accelerator
                // design) measure zero.
                let resources = if kind == JobKind::Dse {
                    pxl_flow::design_for_point(&spec.benchmark, &spec.point)
                        .ok()
                        .and_then(|d| d.resources)
                } else {
                    None
                };
                let result = pxl_flow::measurement_of(&run_spec, resources.as_ref(), &out);
                let m = &out.metrics;
                let snapshot = JobEvent::Metrics {
                    job: job_id,
                    kernel_ps: out.kernel.as_ps(),
                    steal_attempts: m.get("accel.steal_attempts") + m.get("cpu.steal_attempts"),
                    dram_bytes: m.get("mem.dram_bytes"),
                    trace_events: out.trace.len() as u64,
                };
                let trace_events = (kind == JobKind::Profile).then(|| out.trace.len() as u64);
                return Verdict::Done {
                    result,
                    trace_events,
                    metrics: Some(snapshot),
                    resumed_from_cycle,
                };
            }
            Ok(SessionStatus::Paused { .. }) => {
                let cycle = boundary.expect("paused only at a requested boundary");
                let snap = session.snapshot();
                persist_checkpoint(shared, job_id, cycle, &snap);
                // Progress is derived from simulation state only (cycles
                // and task counters), so a resumed leg reports the same
                // numbers an uninterrupted run would.
                let m = session.metrics();
                let tasks = m.get("accel.tasks") + m.get("cpu.tasks");
                let progress = JobEvent::Progress {
                    job: job_id,
                    cycle,
                    tasks,
                    tasks_per_sec: pxl_sim::rate_per_sec(
                        tasks,
                        clock.cycles_to_time(cycle).as_ps(),
                    ),
                };
                let contended = {
                    let mut core = shared.core.lock().expect("core mutex");
                    core.log_line(&progress.to_json());
                    !core.queue.is_empty()
                };
                maybe_send(client, &progress.to_json());
                if contended {
                    return Verdict::Preempted {
                        cycle,
                        snapshot: snap,
                    };
                }
                boundary = every.map(|e| cycle + e);
            }
        }
    }
}

/// Writes the snapshot atomically (temp file + rename) and journals it.
/// Failures degrade durability but never fail the running job.
fn persist_checkpoint(shared: &Arc<Shared>, job_id: JobId, cycle: u64, snap: &Snapshot) {
    let dir = {
        let core = shared.core.lock().expect("core mutex");
        core.checkpoint_dir.clone()
    };
    let Some(dir) = dir else { return };
    let file = checkpoint_file_name(job_id);
    let tmp = dir.join(format!("{file}.tmp"));
    let durable = std::fs::write(&tmp, format!("{}\n", snap.to_json()))
        .and_then(|()| std::fs::rename(&tmp, dir.join(&file)));
    if durable.is_ok() {
        let line = journal::checkpoint_line(job_id.0, cycle, &file);
        let mut core = shared.core.lock().expect("core mutex");
        core.log_line(&line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_keys_qualify_the_kind() {
        use pxl_apps::Scale;
        use pxl_dse::{DesignPoint, PointArch};
        let spec = RunSpec::new(
            "uts",
            Scale::Tiny,
            DesignPoint::accel(PointArch::Flex, 2, 4),
        );
        let sim = cache_key(JobKind::Sim, &spec);
        let dse = cache_key(JobKind::Dse, &spec);
        assert_eq!(
            sim,
            "serve kind=sim bench=uts scale=tiny arch=flex tiles=2 pes=4 \
             cache_kb=32 queue=1024 pstore=8192"
        );
        assert_ne!(sim, dse, "sim and dse must not share a cache slot");
        assert_ne!(
            ResultCache::address(&sim),
            ResultCache::address(&dse),
            "content addresses must differ too"
        );
    }
}
