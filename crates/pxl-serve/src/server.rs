//! The job server: a threaded TCP loop that admits [`Request`]s, schedules
//! jobs fairly across tenants, executes them on a [`WorkerPool`], dedupes
//! identical work through the content-addressed [`ResultCache`], and
//! streams [`JobEvent`]s back as they happen.
//!
//! # Lifecycle of a job
//!
//! `submit` → `accepted` + `queued` → (dispatcher picks it, fair-share) →
//! `running` → either a cache hit (`done` with `cached:true`, no
//! simulation) or a fresh run (`metrics` snapshot, then `done` with
//! `cached:false`) → counters updated. A `shutdown` request flips the
//! server into draining: new submissions are refused with the `draining`
//! error code, every admitted job still completes, and when the last one
//! finishes a `drained` event is sent to whoever asked.
//!
//! # Threads
//!
//! One accept loop, one reader thread per connection, one dispatcher, and
//! `workers` simulation threads (a [`pxl_sim::pool::WorkerPool`]). All
//! shared state lives in one mutex; the dispatcher wakes on a condvar
//! whenever the queue, pause flag, or in-flight count changes. Simulations
//! run without the lock held.

use std::collections::HashMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use pxl_dse::{Measurement, ResultCache};
use pxl_flow::{FlowError, RunError, RunSpec};
use pxl_sim::pool::WorkerPool;

use crate::protocol::{ErrorCode, JobEvent, JobId, JobKind, Request};
use crate::sched::FairQueue;

/// Trace capacity forced onto profile jobs whose spec does not request
/// tracing (a profile job's artifact *is* the trace).
const PROFILE_TRACE_CAPACITY: usize = 1 << 16;

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Simulation worker threads (clamped to at least 1).
    pub workers: usize,
    /// Max queued jobs per tenant before submissions are refused with
    /// `quota_exceeded`.
    pub tenant_quota: usize,
    /// Persist the result cache to this JSONL file (`None` = in-memory).
    pub cache_path: Option<PathBuf>,
    /// Append every emitted [`JobEvent`] to this JSONL file (`None` = no
    /// log). One event per line, in emission order — the CI artifact.
    pub job_log: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            tenant_quota: 64,
            cache_path: None,
            job_log: None,
        }
    }
}

/// Lifetime totals reported by [`Server::join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs that finished successfully (cached or fresh).
    pub completed: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Result-cache hits (jobs answered without simulating).
    pub cache_hits: u64,
    /// Result-cache misses (jobs that ran a simulation).
    pub cache_misses: u64,
}

type Writer = Arc<Mutex<TcpStream>>;

struct Job {
    kind: JobKind,
    spec: RunSpec,
    key: String,
    client: Writer,
}

struct Core {
    queue: FairQueue,
    jobs: HashMap<u64, Job>,
    cache: ResultCache,
    next_job: u64,
    paused: bool,
    draining: bool,
    stopped: bool,
    inflight: usize,
    completed: u64,
    failed: u64,
    drain_waiters: Vec<Writer>,
    log: Option<std::fs::File>,
}

impl Core {
    fn log_line(&mut self, line: &str) {
        if let Some(f) = &mut self.log {
            let _ = writeln!(f, "{line}");
        }
    }

    fn status_event(&self) -> JobEvent {
        JobEvent::Status {
            queued: self.queue.len() as u64,
            running: self.inflight as u64,
            completed: self.completed,
            failed: self.failed,
            paused: self.paused,
            draining: self.draining,
        }
    }
}

struct Shared {
    core: Mutex<Core>,
    work: Condvar,
}

fn send_line(writer: &Writer, line: &str) {
    // A vanished client must not take the server down; its events are
    // still in the job log.
    let mut stream = writer.lock().expect("writer mutex");
    let _ = writeln!(stream, "{line}");
    let _ = stream.flush();
}

/// Logs (under the core lock) then sends each event, preserving order.
fn emit(shared: &Shared, writer: &Writer, events: &[JobEvent]) {
    let lines: Vec<String> = events.iter().map(JobEvent::to_json).collect();
    {
        let mut core = shared.core.lock().expect("core mutex");
        for line in &lines {
            core.log_line(line);
        }
    }
    for line in &lines {
        send_line(writer, line);
    }
}

/// The cache identity of a submission: the job kind qualifying the spec's
/// canonical string (a `sim` and a `dse` of the same spec differ in their
/// resource columns, so they must not share a cache slot).
pub fn cache_key(kind: JobKind, spec: &RunSpec) -> String {
    format!("serve kind={} {}", kind.label(), spec.canonical())
}

/// A running job server bound to a loopback port.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    dispatcher: JoinHandle<()>,
}

impl Server {
    /// Binds `127.0.0.1:0` (an OS-assigned port — this is a local harness,
    /// not an internet-facing daemon) and starts the accept loop, the
    /// dispatcher and the simulation pool.
    ///
    /// # Errors
    ///
    /// The bind failure or the cache-file failure, as a message.
    pub fn start(config: ServerConfig) -> Result<Server, String> {
        let listener =
            TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind 127.0.0.1:0: {e}"))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        let cache = match &config.cache_path {
            Some(path) => ResultCache::open(path)?,
            None => ResultCache::in_memory(),
        };
        let log = match &config.job_log {
            Some(path) => Some(
                std::fs::File::create(path)
                    .map_err(|e| format!("create {}: {e}", path.display()))?,
            ),
            None => None,
        };
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            core: Mutex::new(Core {
                queue: FairQueue::new(config.tenant_quota),
                jobs: HashMap::new(),
                cache,
                next_job: 1,
                paused: false,
                draining: false,
                stopped: false,
                inflight: 0,
                completed: 0,
                failed: 0,
                drain_waiters: Vec::new(),
                log,
            }),
            work: Condvar::new(),
        });

        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("pxl-serve-dispatch".to_owned())
                .spawn(move || dispatch_loop(&shared, workers, addr))
                .map_err(|e| format!("spawn dispatcher: {e}"))?
        };
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("pxl-serve-accept".to_owned())
                .spawn(move || accept_loop(&listener, &shared))
                .map_err(|e| format!("spawn accept loop: {e}"))?
        };
        Ok(Server {
            addr,
            shared,
            accept,
            dispatcher,
        })
    }

    /// The bound loopback address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for a graceful drain (a client's `shutdown` request) to finish
    /// and returns the lifetime totals. Blocks until then.
    ///
    /// # Panics
    ///
    /// Panics if a server thread panicked.
    pub fn join(self) -> ServeSummary {
        self.dispatcher.join().expect("dispatcher thread panicked");
        self.accept.join().expect("accept thread panicked");
        let core = self.shared.core.lock().expect("core mutex");
        ServeSummary {
            completed: core.completed,
            failed: core.failed,
            cache_hits: core.cache.hits() as u64,
            cache_misses: core.cache.misses() as u64,
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.core.lock().expect("core mutex").stopped {
            break;
        }
        let Ok(stream) = conn else { continue };
        let shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("pxl-serve-conn".to_owned())
            .spawn(move || serve_connection(stream, &shared));
        if spawned.is_err() {
            continue;
        }
    }
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) {
    use std::io::BufRead;
    let Ok(reading) = stream.try_clone() else {
        return;
    };
    let writer: Writer = Arc::new(Mutex::new(stream));
    let reader = std::io::BufReader::new(reading);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match Request::from_json(&line) {
            Err(e) => emit(
                shared,
                &writer,
                &[JobEvent::Error {
                    code: e.code,
                    message: e.message,
                }],
            ),
            Ok(request) => handle_request(shared, &writer, request),
        }
    }
}

fn handle_request(shared: &Arc<Shared>, writer: &Writer, request: Request) {
    match request {
        Request::Submit { tenant, kind, spec } => {
            let key = cache_key(kind, &spec);
            let mut core = shared.core.lock().expect("core mutex");
            if core.draining {
                drop(core);
                emit(
                    shared,
                    writer,
                    &[JobEvent::Error {
                        code: ErrorCode::Draining,
                        message: "the server is draining and accepts no new jobs".to_owned(),
                    }],
                );
                return;
            }
            let id = core.next_job;
            match core.queue.enqueue(&tenant, JobId(id)) {
                Err(quota) => {
                    drop(core);
                    emit(
                        shared,
                        writer,
                        &[JobEvent::Error {
                            code: ErrorCode::QuotaExceeded,
                            message: quota.to_string(),
                        }],
                    );
                }
                Ok(position) => {
                    core.next_job += 1;
                    core.jobs.insert(
                        id,
                        Job {
                            kind,
                            spec,
                            key: key.clone(),
                            client: Arc::clone(writer),
                        },
                    );
                    let events = [
                        JobEvent::Accepted {
                            job: JobId(id),
                            tenant,
                            key: ResultCache::address(&key),
                        },
                        JobEvent::Queued {
                            job: JobId(id),
                            position: position as u64,
                        },
                    ];
                    for e in &events {
                        core.log_line(&e.to_json());
                    }
                    drop(core);
                    shared.work.notify_all();
                    for e in &events {
                        send_line(writer, &e.to_json());
                    }
                }
            }
        }
        Request::Status => {
            let event = {
                let mut core = shared.core.lock().expect("core mutex");
                let event = core.status_event();
                core.log_line(&event.to_json());
                event
            };
            send_line(writer, &event.to_json());
        }
        Request::Pause | Request::Resume => {
            let event = {
                let mut core = shared.core.lock().expect("core mutex");
                core.paused = matches!(request, Request::Pause);
                let event = core.status_event();
                core.log_line(&event.to_json());
                event
            };
            shared.work.notify_all();
            send_line(writer, &event.to_json());
        }
        Request::Shutdown => {
            let mut core = shared.core.lock().expect("core mutex");
            core.draining = true;
            core.drain_waiters.push(Arc::clone(writer));
            drop(core);
            shared.work.notify_all();
        }
    }
}

fn dispatch_loop(shared: &Arc<Shared>, workers: usize, addr: SocketAddr) {
    let pool = WorkerPool::new(workers);
    let mut core = shared.core.lock().expect("core mutex");
    loop {
        if core.draining && core.queue.is_empty() && core.inflight == 0 {
            let event = JobEvent::Drained {
                completed: core.completed,
            };
            core.log_line(&event.to_json());
            core.stopped = true;
            let waiters = std::mem::take(&mut core.drain_waiters);
            drop(core);
            for w in &waiters {
                send_line(w, &event.to_json());
            }
            // The accept loop is blocked in accept(); poke it so it sees
            // the stopped flag and exits.
            let _ = TcpStream::connect(addr);
            break;
        }
        if !core.paused && core.inflight < workers {
            if let Some(job_id) = core.queue.pop() {
                core.inflight += 1;
                let client = Arc::clone(
                    &core
                        .jobs
                        .get(&job_id.0)
                        .expect("queued job is registered")
                        .client,
                );
                let running = JobEvent::Running { job: job_id };
                core.log_line(&running.to_json());
                drop(core);
                send_line(&client, &running.to_json());
                let task_shared = Arc::clone(shared);
                pool.submit(move || run_job(&task_shared, job_id));
                core = shared.core.lock().expect("core mutex");
                continue;
            }
        }
        core = shared.work.wait(core).expect("core mutex");
    }
    // Drain condition guarantees no jobs are in flight here, so this
    // returns promptly.
    pool.shutdown();
}

/// What one finished job sends: the terminal event, preceded by a metrics
/// snapshot for fresh (non-cached) successful runs.
fn run_job(shared: &Arc<Shared>, job_id: JobId) {
    let (spec, kind, key, client, hit) = {
        let mut core = shared.core.lock().expect("core mutex");
        let job = core.jobs.get(&job_id.0).expect("running job is registered");
        let spec = job.spec.clone();
        let kind = job.kind;
        let key = job.key.clone();
        let client = Arc::clone(&job.client);
        // Profile jobs always execute: their artifact is the trace, which
        // the measurement cache does not store.
        let hit = if kind == JobKind::Profile {
            None
        } else {
            core.cache.get(&key)
        };
        (spec, kind, key, client, hit)
    };

    let verdict = match hit {
        Some(m) => Ok((m, None, None)),
        None => execute_fresh(job_id, &spec, kind),
    };
    let cached = hit.is_some();

    let mut events: Vec<JobEvent> = Vec::new();
    {
        let mut core = shared.core.lock().expect("core mutex");
        core.jobs.remove(&job_id.0);
        core.inflight -= 1;
        match verdict {
            Ok((result, trace_events, metrics)) => {
                if !cached && kind != JobKind::Profile {
                    // Ignore a cache-persistence failure: the job itself
                    // succeeded and the client still gets its result.
                    let _ = core.cache.insert(&key, result);
                }
                core.completed += 1;
                if let Some(m) = metrics {
                    events.push(m);
                }
                events.push(JobEvent::Done {
                    job: job_id,
                    cached,
                    result,
                    trace_events,
                });
            }
            Err(error) => {
                core.failed += 1;
                events.push(JobEvent::Failed { job: job_id, error });
            }
        }
        for e in &events {
            core.log_line(&e.to_json());
        }
    }
    for e in &events {
        send_line(&client, &e.to_json());
    }
    shared.work.notify_all();
}

/// Runs the simulation for a cache miss. Returns the measurement, the trace
/// size (profile jobs only) and the metrics snapshot event.
#[allow(clippy::type_complexity)]
fn execute_fresh(
    job_id: JobId,
    spec: &RunSpec,
    kind: JobKind,
) -> Result<(Measurement, Option<u64>, Option<JobEvent>), String> {
    let run_spec = if kind == JobKind::Profile && spec.trace_capacity == 0 {
        spec.clone().with_trace(PROFILE_TRACE_CAPACITY)
    } else {
        spec.clone()
    };
    let out = pxl_flow::execute(&run_spec)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| {
            RunError::Build(FlowError::NoLiteVariant(spec.benchmark.clone())).to_string()
        })?;
    // DSE jobs fold in the FPGA resource estimate; sim/profile jobs (and
    // CPU-baseline points, which have no accelerator design) measure zero.
    let resources = if kind == JobKind::Dse {
        pxl_flow::design_for_point(&spec.benchmark, &spec.point)
            .ok()
            .and_then(|d| d.resources)
    } else {
        None
    };
    let result = pxl_flow::measurement_of(&run_spec, resources.as_ref(), &out);
    let m = &out.metrics;
    let snapshot = JobEvent::Metrics {
        job: job_id,
        kernel_ps: out.kernel.as_ps(),
        steal_attempts: m.get("accel.steal_attempts") + m.get("cpu.steal_attempts"),
        dram_bytes: m.get("mem.dram_bytes"),
        trace_events: out.trace.len() as u64,
    };
    let trace_events = (kind == JobKind::Profile).then(|| out.trace.len() as u64);
    Ok((result, trace_events, Some(snapshot)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_keys_qualify_the_kind() {
        use pxl_apps::Scale;
        use pxl_dse::{DesignPoint, PointArch};
        let spec = RunSpec::new(
            "uts",
            Scale::Tiny,
            DesignPoint::accel(PointArch::Flex, 2, 4),
        );
        let sim = cache_key(JobKind::Sim, &spec);
        let dse = cache_key(JobKind::Dse, &spec);
        assert_eq!(
            sim,
            "serve kind=sim bench=uts scale=tiny arch=flex tiles=2 pes=4 \
             cache_kb=32 queue=1024 pstore=8192"
        );
        assert_ne!(sim, dse, "sim and dse must not share a cache slot");
        assert_ne!(
            ResultCache::address(&sim),
            ResultCache::address(&dse),
            "content addresses must differ too"
        );
    }
}
