//! The durable job journal: a write-ahead JSONL file that makes the
//! server crash-safe.
//!
//! Two kinds of lines share the file. *Journal records* (discriminated by
//! a `"journal"` field) capture intent before the server acts on it: a
//! `submit` record is appended before the submission is acknowledged, a
//! `checkpoint` record after each durable snapshot. *Event lines* are the
//! [`JobEvent`] stream the server emits anyway (discriminated by
//! `"event"`), which double as the commit log: a `done` or `failed` event
//! marks its job terminal.
//!
//! Recovery is a pure replay: submits minus terminal events = the jobs
//! that were admitted but never finished, each paired with its latest
//! checkpoint (if any). A crash can tear the trailing line mid-write;
//! [`replay`] tolerates any unparseable line, counting it in
//! [`Recovery::torn_lines`] rather than refusing to start.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;

use pxl_flow::RunSpec;
use pxl_sim::json::JsonValue;

use crate::protocol::{JobEvent, JobKind};

/// An open journal file in append mode.
pub struct Journal {
    file: File,
    flush_every_record: bool,
}

impl Journal {
    /// Opens (creating if absent, appending if present) the journal at
    /// `path`. With `flush_every_record`, every line is fsynced before
    /// [`Journal::record`] returns — the write-ahead guarantee survives
    /// power loss, at a syscall per record.
    ///
    /// # Errors
    ///
    /// The open failure, as a message.
    pub fn open(path: &Path, flush_every_record: bool) -> Result<Journal, String> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("open journal {}: {e}", path.display()))?;
        Ok(Journal {
            file,
            flush_every_record,
        })
    }

    /// Appends one line. Write failures are swallowed (a full disk must
    /// not take running simulations down; durability degrades instead).
    pub fn record(&mut self, line: &str) {
        let _ = writeln!(self.file, "{line}");
        if self.flush_every_record {
            let _ = self.file.sync_data();
        }
    }
}

/// The write-ahead record for an admitted submission.
pub fn submit_line(job: u64, tenant: &str, kind: JobKind, spec: &RunSpec) -> String {
    JsonValue::Object(vec![
        ("journal".to_owned(), JsonValue::Str("submit".to_owned())),
        ("job".to_owned(), JsonValue::num_u64(job)),
        ("tenant".to_owned(), JsonValue::Str(tenant.to_owned())),
        ("kind".to_owned(), JsonValue::Str(kind.label().to_owned())),
        ("spec".to_owned(), spec.to_json_value()),
    ])
    .to_json()
}

/// The record for a durable checkpoint: `file` is the snapshot's file
/// name inside the server's checkpoint directory.
pub fn checkpoint_line(job: u64, cycle: u64, file: &str) -> String {
    JsonValue::Object(vec![
        (
            "journal".to_owned(),
            JsonValue::Str("checkpoint".to_owned()),
        ),
        ("job".to_owned(), JsonValue::num_u64(job)),
        ("cycle".to_owned(), JsonValue::num_u64(cycle)),
        ("file".to_owned(), JsonValue::Str(file.to_owned())),
    ])
    .to_json()
}

/// A job the journal says was admitted but never reached a terminal
/// event.
#[derive(Debug, Clone)]
pub struct RecoveredJob {
    /// The job id from its submit record.
    pub job: u64,
    /// The submitting tenant.
    pub tenant: String,
    /// The job kind.
    pub kind: JobKind,
    /// The submitted spec.
    pub spec: RunSpec,
    /// The latest checkpoint on record: `(cycle, file name)`.
    pub checkpoint: Option<(u64, String)>,
}

/// What a journal replay found.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Admitted-but-unfinished jobs, in ascending id order.
    pub jobs: Vec<RecoveredJob>,
    /// One past the highest job id ever admitted (1 for an empty
    /// journal), so recovered servers never reuse an id.
    pub next_job: u64,
    /// Lines that did not parse — normally 0 or 1 (the torn tail of a
    /// crashed write).
    pub torn_lines: u64,
}

/// Replays the journal at `path`. A missing file is an empty journal,
/// not an error; unparseable lines are counted, not fatal.
pub fn replay(path: &Path) -> Recovery {
    let mut recovery = Recovery {
        jobs: Vec::new(),
        next_job: 1,
        torn_lines: 0,
    };
    let Ok(text) = std::fs::read_to_string(path) else {
        return recovery;
    };
    let mut pending: Vec<RecoveredJob> = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Some(Line::Submit(job)) => {
                recovery.next_job = recovery.next_job.max(job.job + 1);
                pending.push(*job);
            }
            Some(Line::Checkpoint { job, cycle, file }) => {
                // Later records supersede earlier ones: the latest
                // checkpoint is the one to resume from.
                if let Some(p) = pending.iter_mut().find(|p| p.job == job) {
                    p.checkpoint = Some((cycle, file));
                }
            }
            Some(Line::Terminal(job)) => pending.retain(|p| p.job != job),
            Some(Line::Other) => {}
            None => recovery.torn_lines += 1,
        }
    }
    pending.sort_by_key(|p| p.job);
    recovery.jobs = pending;
    recovery
}

enum Line {
    Submit(Box<RecoveredJob>),
    Checkpoint {
        job: u64,
        cycle: u64,
        file: String,
    },
    /// A `done` or `failed` event: the job is finished for good.
    Terminal(u64),
    /// Any other well-formed line (non-terminal events).
    Other,
}

fn parse_line(line: &str) -> Option<Line> {
    let value = JsonValue::parse(line).ok()?;
    if let Some(record) = value.get("journal").and_then(JsonValue::as_str) {
        let job = value.get("job").and_then(JsonValue::as_u64)?;
        return match record {
            "submit" => {
                let tenant = value.get("tenant").and_then(JsonValue::as_str)?.to_owned();
                let kind = JobKind::from_label(value.get("kind").and_then(JsonValue::as_str)?)?;
                let spec = RunSpec::from_json_value(value.get("spec")?).ok()?;
                Some(Line::Submit(Box::new(RecoveredJob {
                    job,
                    tenant,
                    kind,
                    spec,
                    checkpoint: None,
                })))
            }
            "checkpoint" => Some(Line::Checkpoint {
                job,
                cycle: value.get("cycle").and_then(JsonValue::as_u64)?,
                file: value.get("file").and_then(JsonValue::as_str)?.to_owned(),
            }),
            _ => None,
        };
    }
    match JobEvent::from_json_value(&value).ok()? {
        JobEvent::Done { job, .. } | JobEvent::Failed { job, .. } => Some(Line::Terminal(job.0)),
        _ => Some(Line::Other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxl_apps::Scale;
    use pxl_dse::{DesignPoint, Measurement, PointArch};

    fn spec() -> RunSpec {
        RunSpec::new(
            "uts",
            Scale::Tiny,
            DesignPoint::accel(PointArch::Flex, 1, 2),
        )
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pxl-journal-{name}-{}", std::process::id()));
        p
    }

    fn done_line(job: u64) -> String {
        JobEvent::Done {
            job: crate::protocol::JobId(job),
            cached: false,
            result: Measurement {
                kernel_ps: 1,
                whole_ps: 2,
                energy_j: 0.0,
                lut: 0,
                bram18: 0,
            },
            trace_events: None,
            resumed_from_cycle: None,
        }
        .to_json()
    }

    #[test]
    fn replay_recovers_unfinished_jobs_with_latest_checkpoint() {
        let path = temp_path("replay");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::open(&path, true).unwrap();
        j.record(&submit_line(1, "a", JobKind::Sim, &spec()));
        j.record(&submit_line(2, "b", JobKind::Dse, &spec()));
        j.record(&checkpoint_line(2, 250_000, "job-2.ckpt.json"));
        j.record(&checkpoint_line(2, 500_000, "job-2.ckpt.json"));
        j.record(&done_line(1));
        drop(j);

        let rec = replay(&path);
        assert_eq!(rec.torn_lines, 0);
        assert_eq!(rec.next_job, 3);
        assert_eq!(rec.jobs.len(), 1, "job 1 is done, only job 2 recovers");
        assert_eq!(rec.jobs[0].job, 2);
        assert_eq!(rec.jobs[0].tenant, "b");
        assert_eq!(rec.jobs[0].kind, JobKind::Dse);
        assert_eq!(
            rec.jobs[0].checkpoint,
            Some((500_000, "job-2.ckpt.json".to_owned())),
            "the latest checkpoint wins"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_trailing_line_is_counted_not_fatal() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::open(&path, false).unwrap();
        j.record(&submit_line(7, "a", JobKind::Sim, &spec()));
        drop(j);
        // Simulate a crash mid-write: an incomplete JSON object tail.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"journal\":\"submit\",\"job\":8,\"ten");
        std::fs::write(&path, text).unwrap();

        let rec = replay(&path);
        assert_eq!(rec.torn_lines, 1);
        assert_eq!(rec.jobs.len(), 1);
        assert_eq!(rec.jobs[0].job, 7);
        assert_eq!(rec.next_job, 8, "the torn submit never counts");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_journal_is_an_empty_recovery() {
        let rec = replay(Path::new("/nonexistent/journal.jsonl"));
        assert!(rec.jobs.is_empty());
        assert_eq!(rec.next_job, 1);
        assert_eq!(rec.torn_lines, 0);
    }

    #[test]
    fn reopening_appends_instead_of_truncating() {
        let path = temp_path("append");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::open(&path, false).unwrap();
        j.record(&submit_line(1, "a", JobKind::Sim, &spec()));
        drop(j);
        let mut j = Journal::open(&path, false).unwrap();
        j.record(&done_line(1));
        drop(j);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "both lifetimes' lines survive");
        assert!(replay(&path).jobs.is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
