//! Event-driven multicore CPU engine with a software work-stealing runtime.

use pxl_mem::{AccessKind, Memory, MemorySystem, PortId};
use pxl_model::serial::HOST_SLOTS;
use pxl_model::{
    Continuation, ExecProfile, PendingTask, Task, TaskContext, TaskTypeId, Worker, PENDING_WORDS,
    TASK_WORDS,
};
use pxl_sim::config::{CpuCoreParams, MemoryConfig};
use pxl_sim::json::JsonValue;
use pxl_sim::snapshot::{self, malformed, Snapshot, SnapshotError};
use pxl_sim::{
    EventQueue, Metrics, TelemetrySampler, Time, Timeline, TraceEvent, Tracer, XorShift64,
};

use pxl_arch::deque::TaskDeque;
use pxl_arch::fabric::{register_fault_metrics, AccelError, AccelResult, Watchdog};
use pxl_arch::{Engine, EngineKind, RunStatus, Workload};

/// Core cycles without a task completion before the quiescence watchdog
/// declares the run stalled while work is still outstanding — the same
/// window [`pxl_arch::AccelConfig`] defaults to for the accelerators.
const WATCHDOG_QUIESCENCE_CYCLES: u64 = 1_000_000;

/// Base simulated address of the runtime's join-counter frames. Each pending
/// task's counter lives on its own cache line, so coherence traffic on joins
/// is modelled but false sharing is not.
const JOIN_FRAME_BASE: u64 = 0x4000_0000_0000;
/// Base simulated address of the per-core deque metadata (THE protocol
/// head/tail words); thieves and victims contend on these lines.
const DEQUE_META_BASE: u64 = 0x4100_0000_0000;

/// Instruction costs of the software runtime's primitives.
///
/// Derived from published Cilk-5/Cilk Plus overhead analyses: a spawn is a
/// few dozen instructions (frame setup + deque push), a successful steal
/// several hundred (locking, frame theft, resumption).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftwareCosts {
    /// Pop + dispatch of a local task.
    pub dispatch_instrs: u64,
    /// Spawning a child task (frame allocation + deque push).
    pub spawn_instrs: u64,
    /// Returning a value through a join counter (excluding the atomic).
    pub send_arg_instrs: u64,
    /// Creating a successor frame.
    pub successor_instrs: u64,
    /// One steal attempt (victim selection, locking, transfer).
    pub steal_attempt_instrs: u64,
    /// Idle backoff after a failed steal.
    pub steal_backoff_instrs: u64,
    /// Effective instructions per cycle for runtime bookkeeping code.
    pub runtime_ipc: f64,
}

impl Default for SoftwareCosts {
    fn default() -> Self {
        SoftwareCosts {
            dispatch_instrs: 25,
            spawn_instrs: 40,
            send_arg_instrs: 30,
            successor_instrs: 45,
            steal_attempt_instrs: 300,
            steal_backoff_instrs: 150,
            runtime_ipc: 2.0,
        }
    }
}

/// Result of a CPU run (same shape as the accelerator's).
pub type CpuResult = AccelResult;

#[derive(Debug, Clone)]
enum Event {
    CoreWake { core: usize },
    StealTry { core: usize },
    TaskRun { core: usize, task: Task },
}

impl Event {
    /// Flat word encoding for checkpointing: a tag word followed by the
    /// variant's fields (tasks expand to [`TASK_WORDS`] words).
    fn to_words(&self) -> Vec<u64> {
        match self {
            Event::CoreWake { core } => vec![0, *core as u64],
            Event::StealTry { core } => vec![1, *core as u64],
            Event::TaskRun { core, task } => {
                let mut w = vec![2, *core as u64];
                w.extend(task.to_words());
                w
            }
        }
    }

    /// Inverse of [`Event::to_words`].
    fn from_words(words: &[u64]) -> Result<Event, String> {
        let expect = |n: usize| {
            if words.len() == n {
                Ok(())
            } else {
                Err(format!(
                    "event encoding holds {} words, expected {n}",
                    words.len()
                ))
            }
        };
        match words.first() {
            Some(0) => {
                expect(2)?;
                Ok(Event::CoreWake {
                    core: words[1] as usize,
                })
            }
            Some(1) => {
                expect(2)?;
                Ok(Event::StealTry {
                    core: words[1] as usize,
                })
            }
            Some(2) => {
                expect(2 + TASK_WORDS)?;
                Ok(Event::TaskRun {
                    core: words[1] as usize,
                    task: Task::from_words(&words[2..])?,
                })
            }
            Some(tag) => Err(format!("unknown cpu event tag {tag}")),
            None => Err("empty event encoding".to_owned()),
        }
    }
}

/// The multicore software-runtime simulator.
///
/// # Examples
///
/// ```
/// use pxl_cpu::CpuEngine;
/// use pxl_model::{Continuation, ExecProfile, Task, TaskContext, TaskTypeId, Worker};
///
/// const FIB: TaskTypeId = TaskTypeId(0);
/// const SUM: TaskTypeId = TaskTypeId(1);
/// struct Fib;
/// impl Worker for Fib {
///     fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
///         let k = task.k;
///         if task.ty == FIB {
///             let n = task.args[0];
///             ctx.compute(2);
///             if n < 2 {
///                 ctx.send_arg(k, n);
///             } else {
///                 let kk = ctx.make_successor(SUM, k, 2);
///                 ctx.spawn(Task::new(FIB, kk.with_slot(1), &[n - 2]));
///                 ctx.spawn(Task::new(FIB, kk.with_slot(0), &[n - 1]));
///             }
///         } else {
///             ctx.send_arg(k, task.args[0] + task.args[1]);
///         }
///     }
/// }
///
/// let mut cpu = CpuEngine::new(4, ExecProfile::scalar());
/// let out = cpu.run(&mut Fib, Task::new(FIB, Continuation::host(0), &[12])).unwrap();
/// assert_eq!(out.result, 144);
/// ```
#[derive(Debug)]
pub struct CpuEngine {
    cores: usize,
    core_params: CpuCoreParams,
    costs: SoftwareCosts,
    profile: ExecProfile,
    mem: Memory,
    memsys: MemorySystem,
    deques: Vec<TaskDeque>,
    rngs: Vec<XorShift64>,
    steal_fails: Vec<u32>,
    busy_until: Vec<Time>,
    pending: Vec<Option<PendingTask>>,
    pending_free: Vec<u32>,
    host: [Option<u64>; HOST_SLOTS],
    events: EventQueue<Event>,
    outstanding: u64,
    last_useful: Time,
    watchdog: Watchdog,
    metrics: Metrics,
    trace: Tracer,
    /// Run-unique task instance ids for the trace (0 = "no task"; the root
    /// gets id 1), matching the accelerator engines' numbering scheme.
    next_task_id: u64,
    error: Option<AccelError>,
    max_sim_time_us: u64,
    /// Host slot the root continuation targets, latched at launch so a
    /// paused/restored engine can still finish the run.
    result_slot: Option<u8>,
    /// Whether the root task has been seeded. A restored engine is already
    /// launched; [`CpuEngine::run`] skips re-seeding.
    launched: bool,
    /// In-run telemetry sampler, ticked at event-pop epoch boundaries;
    /// `None` (the default) keeps the hot loop to a single Option check.
    telemetry: Option<TelemetrySampler>,
}

impl CpuEngine {
    /// Creates an engine with `cores` Table III cores and default software
    /// costs.
    pub fn new(cores: usize, profile: ExecProfile) -> Self {
        CpuEngine::with_params(
            cores,
            profile,
            CpuCoreParams::micro2018(),
            MemoryConfig::micro2018(),
            SoftwareCosts::default(),
        )
    }

    /// Creates an engine with explicit core, memory and runtime parameters
    /// (used for the Zedboard's Cortex-A9 configuration).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn with_params(
        cores: usize,
        profile: ExecProfile,
        core_params: CpuCoreParams,
        memory: MemoryConfig,
        costs: SoftwareCosts,
    ) -> Self {
        assert!(cores > 0, "need at least one core");
        let memsys = MemorySystem::new(vec![memory.cpu_l1.clone(); cores], &memory);
        let mut metrics = Metrics::new();
        register_fault_metrics(&mut metrics);
        metrics.register_counter("trace.dropped");
        let watchdog = Watchdog::new(core_params.clock.cycles_to_time(WATCHDOG_QUIESCENCE_CYCLES));
        CpuEngine {
            cores,
            core_params,
            costs,
            profile,
            mem: Memory::new(),
            memsys,
            deques: (0..cores).map(|_| TaskDeque::new(1 << 20)).collect(),
            rngs: (0..cores)
                .map(|i| XorShift64::new(0xC0FE + 77 * i as u64))
                .collect(),
            steal_fails: vec![0; cores],
            busy_until: vec![Time::ZERO; cores],
            pending: Vec::new(),
            pending_free: Vec::new(),
            host: [None; HOST_SLOTS],
            events: EventQueue::new(),
            outstanding: 0,
            last_useful: Time::ZERO,
            watchdog,
            metrics,
            trace: Tracer::disabled(),
            next_task_id: 1,
            error: None,
            max_sim_time_us: 2_000_000,
            result_slot: None,
            launched: false,
            telemetry: None,
        }
    }

    /// Mutable access to functional memory for input setup.
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Shared access to functional memory for output checking.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// The engine's metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Value delivered to a host result register, if any.
    pub fn host_result(&self, slot: u8) -> Option<u64> {
        self.host.get(slot as usize).copied().flatten()
    }

    /// Enables structured event tracing (runtime + memory hierarchy) with a
    /// bounded buffer of `capacity` records per source; zero disables.
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.trace = Tracer::bounded(capacity);
        self.memsys.enable_trace(capacity);
    }

    /// Enables in-run telemetry sampling every `every_cycles` core cycles;
    /// zero disables it. Configure before launching (or restoring) a run.
    pub fn set_telemetry_every(&mut self, every_cycles: u64) {
        self.telemetry = (every_cycles > 0)
            .then(|| TelemetrySampler::new(self.core_params.clock.cycles_to_time(every_cycles)));
    }

    fn runtime_cycles(&self, instrs: u64) -> Time {
        let cycles = (instrs as f64 / self.costs.runtime_ipc).ceil() as u64;
        self.core_params.clock.cycles_to_time(cycles)
    }

    /// Hands out the next run-unique task instance id.
    fn alloc_task_id(&mut self) -> u64 {
        let id = self.next_task_id;
        self.next_task_id += 1;
        id
    }

    /// Runs `root` to completion on core 0 (the thread that called the
    /// Cilk spawn root); other cores join by stealing.
    ///
    /// # Errors
    ///
    /// See [`AccelError`]; queue/P-Store overflow cannot occur (software
    /// stores are heap-backed) but leaks and timeouts are detected.
    pub fn run<W: Worker + ?Sized>(
        &mut self,
        worker: &mut W,
        root: Task,
    ) -> Result<CpuResult, AccelError> {
        self.launch(root);
        match self.run_until(worker, None)? {
            RunStatus::Finished(result) => Ok(result),
            RunStatus::Paused { .. } => unreachable!("run_until without a pause never pauses"),
        }
    }

    /// Seeds `root` on core 0 and wakes the other cores. A no-op when the
    /// engine is already launched — notably after [`CpuEngine::restore`].
    pub fn launch(&mut self, root: Task) {
        if self.launched {
            return;
        }
        self.launched = true;
        self.result_slot = match root.k {
            Continuation::Host { slot } => Some(slot),
            _ => None,
        };
        self.outstanding = 1;
        let root = root.with_id(self.alloc_task_id());
        self.events.push(
            Time::ZERO,
            Event::TaskRun {
                core: 0,
                task: root,
            },
        );
        for core in 1..self.cores {
            self.events.push(Time::ZERO, Event::CoreWake { core });
        }
    }

    /// Advances the simulation until the computation drains or, when
    /// `pause_at` is given, until the next pending event lies beyond that
    /// boundary with work still outstanding. Call [`CpuEngine::launch`]
    /// first (or restore a snapshot); legs compose — keep calling with the
    /// same worker until [`RunStatus::Finished`].
    ///
    /// # Errors
    ///
    /// See [`CpuEngine::run`].
    pub fn run_until<W: Worker + ?Sized>(
        &mut self,
        worker: &mut W,
        pause_at: Option<Time>,
    ) -> Result<RunStatus, AccelError> {
        let limit = Time::from_us(self.max_sim_time_us);

        loop {
            if let Some(pause) = pause_at {
                // Pause only between events and only while work remains; a
                // drained computation always runs to its finished result.
                if self.outstanding > 0 {
                    match self.events.peek_time() {
                        Some(next) if next > pause => return Ok(RunStatus::Paused { at: pause }),
                        _ => {}
                    }
                }
            }
            let Some((now, event)) = self.events.pop() else {
                break;
            };
            if self.outstanding == 0 {
                break;
            }
            if now > limit {
                return Err(AccelError::TimedOut);
            }
            if self.watchdog.expired(now) {
                let blocked_unit = (0..self.cores).find(|&c| !self.deques[c].is_empty());
                return Err(self.watchdog.stall(
                    &mut self.metrics,
                    &mut self.trace,
                    now,
                    blocked_unit,
                ));
            }
            if self.telemetry.as_ref().is_some_and(|t| t.due(now)) {
                // Sample at the epoch boundary *before* handling the event
                // that crossed it: the pause check above fires on the peeked
                // event, so a resumed leg replays this sample identically.
                let gauges = self.telemetry_gauges();
                let metrics = &self.metrics;
                if let Some(t) = self.telemetry.as_mut() {
                    t.tick(now, metrics, &gauges);
                }
            }
            self.handle(now, event, worker);
            if let Some(err) = self.error.take() {
                return Err(err);
            }
        }

        let leaked = self.pending.iter().filter(|p| p.is_some()).count();
        if leaked > 0 {
            return Err(AccelError::LeakedPending { count: leaked });
        }
        let result = match self.result_slot {
            Some(slot) => self.host[slot as usize].ok_or(AccelError::NoResult { slot })?,
            None => 0,
        };
        // Close the final partial telemetry window before end-of-run rollups
        // (queue peaks, memory-system stats) land in the registry, so the
        // last sample's deltas cover only in-run activity like every other.
        let gauges = self.telemetry_gauges();
        let timeline = match self.telemetry.as_mut() {
            Some(t) => {
                t.flush(self.last_useful, &self.metrics, &gauges);
                t.take_timeline()
            }
            None => Timeline::default(),
        };
        let queue_peak: usize = self.deques.iter().map(TaskDeque::peak).sum();
        self.metrics.add("cpu.queue_peak_sum", queue_peak as u64);
        let mem_stats = self.memsys.take_stats();
        self.metrics.merge(&mem_stats);
        let mut trace = std::mem::take(&mut self.trace);
        trace.absorb(self.memsys.take_trace());
        trace.finish();
        self.metrics.add("trace.dropped", trace.dropped());
        Ok(RunStatus::Finished(CpuResult {
            result,
            elapsed: self.last_useful,
            metrics: std::mem::take(&mut self.metrics),
            trace,
            timeline,
        }))
    }

    /// Instantaneous software-runtime gauges recorded with every telemetry
    /// sample — the CPU's equivalents of the fabric's queue-depth gauges.
    fn telemetry_gauges(&self) -> [(&'static str, u64); 3] {
        let ready: usize = self.deques.iter().map(TaskDeque::len).sum();
        let pending = self.pending.iter().filter(|p| p.is_some()).count();
        [
            ("events", self.events.len() as u64),
            ("ready_tasks", ready as u64),
            ("pending_joins", pending as u64),
        ]
    }

    /// Serializes the complete mutable runtime state — deques, pending
    /// frames, RNG streams, event queue, memory system — into a versioned,
    /// checksummed [`Snapshot`]. Capture at a [`RunStatus::Paused`]
    /// boundary; a fresh engine built with the same parameters restores it
    /// and continues byte-identically to an uninterrupted run.
    pub fn snapshot(&self) -> Snapshot {
        let events = JsonValue::Array(
            self.events
                .ordered()
                .into_iter()
                .map(|(when, event)| {
                    let mut words = vec![when.as_ps()];
                    words.extend(event.to_words());
                    snapshot::arr_u64(words)
                })
                .collect(),
        );
        let mut payload = vec![
            ("launched", snapshot::num(u64::from(self.launched))),
            (
                "result_slot",
                snapshot::num(self.result_slot.map_or(0, |s| u64::from(s) + 1)),
            ),
            ("next_task_id", snapshot::num(self.next_task_id)),
            ("outstanding", snapshot::num(self.outstanding)),
            ("last_useful_ps", snapshot::num(self.last_useful.as_ps())),
            (
                "deques",
                JsonValue::Array(
                    self.deques
                        .iter()
                        .map(TaskDeque::state_to_json_value)
                        .collect(),
                ),
            ),
            (
                "rngs",
                snapshot::arr_u64(self.rngs.iter().map(XorShift64::state)),
            ),
            (
                "steal_fails",
                snapshot::arr_u64(self.steal_fails.iter().map(|f| u64::from(*f))),
            ),
            (
                "busy_until_ps",
                snapshot::arr_u64(self.busy_until.iter().map(|t| t.as_ps())),
            ),
            (
                "pending",
                JsonValue::Array(
                    self.pending
                        .iter()
                        .map(|cell| match cell {
                            Some(p) => snapshot::arr_u64(p.to_words()),
                            None => snapshot::arr_u64([]),
                        })
                        .collect(),
                ),
            ),
            (
                "pending_free",
                snapshot::arr_u64(self.pending_free.iter().map(|e| u64::from(*e))),
            ),
            (
                "host",
                JsonValue::Array(
                    self.host
                        .iter()
                        .map(|slot| snapshot::arr_u64(slot.iter().copied()))
                        .collect(),
                ),
            ),
            ("events", events),
            (
                "watchdog",
                snapshot::obj(vec![
                    (
                        "last_progress_ps",
                        snapshot::num(self.watchdog.last_progress().as_ps()),
                    ),
                    (
                        "last_unit",
                        snapshot::num(self.watchdog.last_unit().map_or(0, |u| u as u64 + 1)),
                    ),
                ]),
            ),
            (
                "metrics",
                JsonValue::parse(&self.metrics.to_json()).expect("metrics emit valid JSON"),
            ),
            ("mem", self.mem.state_to_json_value()),
            ("memsys", self.memsys.state_to_json_value()),
            ("trace", self.trace.state_to_json_value()),
        ];
        if let Some(telemetry) = &self.telemetry {
            payload.push(("telemetry", telemetry.state_to_json_value()));
        }
        Snapshot::new("cpu", snapshot::obj(payload))
    }

    /// Overwrites this engine's mutable state with a [`Snapshot`] captured
    /// by [`CpuEngine::snapshot`] on an engine built with the same
    /// parameters.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::EngineMismatch`] when the snapshot was taken by a
    /// different engine family, [`SnapshotError::Malformed`] when the
    /// payload does not describe this configuration.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        snap.expect_engine("cpu")?;
        let p = &snap.payload;

        self.launched = snapshot::get_u64(p, "launched")? != 0;
        self.result_slot = match snapshot::get_u64(p, "result_slot")? {
            0 => None,
            s => Some(u8::try_from(s - 1).map_err(|_| malformed("result_slot out of range"))?),
        };
        self.next_task_id = snapshot::get_u64(p, "next_task_id")?;
        self.outstanding = snapshot::get_u64(p, "outstanding")?;
        self.last_useful = Time::from_ps(snapshot::get_u64(p, "last_useful_ps")?);

        let deques = snapshot::get_arr(p, "deques")?;
        let rngs = snapshot::get_u64s(p, "rngs")?;
        let steal_fails = snapshot::get_u64s(p, "steal_fails")?;
        let busy_until = snapshot::get_u64s(p, "busy_until_ps")?;
        if deques.len() != self.cores
            || rngs.len() != self.cores
            || steal_fails.len() != self.cores
            || busy_until.len() != self.cores
        {
            return Err(malformed(format!(
                "snapshot describes {} cores, this engine has {}",
                deques.len(),
                self.cores
            )));
        }
        for (deque, state) in self.deques.iter_mut().zip(deques) {
            deque.restore_state(state).map_err(malformed)?;
        }
        // XorShift64 state is never zero, so new(state) restores it exactly.
        self.rngs = rngs.iter().map(|s| XorShift64::new(*s)).collect();
        self.steal_fails = steal_fails
            .iter()
            .map(|f| u32::try_from(*f).map_err(|_| malformed("steal_fails overflows u32")))
            .collect::<Result<_, _>>()?;
        self.busy_until = busy_until.iter().map(|ps| Time::from_ps(*ps)).collect();

        self.pending = snapshot::get_arr(p, "pending")?
            .iter()
            .map(|cell| {
                let words: Vec<u64> = cell
                    .as_array()
                    .map(|a| a.iter().filter_map(JsonValue::as_u64).collect())
                    .ok_or_else(|| malformed("pending entry is not an array"))?;
                match words.len() {
                    0 => Ok(None),
                    PENDING_WORDS => PendingTask::from_words(&words).map(Some).map_err(malformed),
                    n => Err(malformed(format!("pending entry holds {n} words"))),
                }
            })
            .collect::<Result<_, SnapshotError>>()?;
        self.pending_free = snapshot::get_u64s(p, "pending_free")?
            .iter()
            .map(|e| u32::try_from(*e).map_err(|_| malformed("pending_free overflows u32")))
            .collect::<Result<_, _>>()?;

        let host = snapshot::get_arr(p, "host")?;
        if host.len() != HOST_SLOTS {
            return Err(malformed(format!(
                "snapshot holds {} host slots, expected {HOST_SLOTS}",
                host.len()
            )));
        }
        for (slot, value) in self.host.iter_mut().zip(host) {
            let cell = value
                .as_array()
                .ok_or_else(|| malformed("host slot is not an array"))?;
            *slot = match cell {
                [] => None,
                [v] => Some(v.as_u64().ok_or_else(|| malformed("bad host value"))?),
                _ => return Err(malformed("host slot holds more than one value")),
            };
        }

        self.events.clear();
        for entry in snapshot::get_arr(p, "events")? {
            let words: Vec<u64> = entry
                .as_array()
                .map(|a| a.iter().filter_map(JsonValue::as_u64).collect())
                .ok_or_else(|| malformed("event entry is not an array"))?;
            let (when, body) = words
                .split_first()
                .ok_or_else(|| malformed("empty event entry"))?;
            let event = Event::from_words(body).map_err(malformed)?;
            self.events.push(Time::from_ps(*when), event);
        }

        let watchdog = snapshot::get(p, "watchdog")?;
        let last_progress = Time::from_ps(snapshot::get_u64(watchdog, "last_progress_ps")?);
        let last_unit = match snapshot::get_u64(watchdog, "last_unit")? {
            0 => None,
            u => Some(u as usize - 1),
        };
        self.watchdog.load(last_progress, last_unit);

        self.metrics = Metrics::from_json(&snapshot::get(p, "metrics")?.to_json())
            .map_err(|e| malformed(format!("metrics: {e}")))?;
        self.mem
            .restore_state(snapshot::get(p, "mem")?)
            .map_err(malformed)?;
        self.memsys
            .restore_state(snapshot::get(p, "memsys")?)
            .map_err(malformed)?;
        self.trace =
            Tracer::state_from_json_value(snapshot::get(p, "trace")?).map_err(malformed)?;
        match (&mut self.telemetry, p.get("telemetry")) {
            (Some(telemetry), Some(saved)) => {
                let restored = TelemetrySampler::state_from_json_value(saved).map_err(malformed)?;
                if restored.every() != telemetry.every() {
                    return Err(malformed("telemetry epoch width mismatch"));
                }
                *telemetry = restored;
            }
            (None, None) => {}
            (Some(_), None) => {
                return Err(malformed(
                    "this engine samples telemetry, the snapshot does not",
                ));
            }
            (None, Some(_)) => {
                return Err(malformed(
                    "the snapshot carries telemetry state, this engine has telemetry off",
                ));
            }
        }
        self.error = None;
        Ok(())
    }

    fn is_busy(&self, core: usize, now: Time) -> bool {
        now < self.busy_until[core]
    }

    fn handle<W: Worker + ?Sized>(&mut self, now: Time, event: Event, worker: &mut W) {
        match event {
            Event::CoreWake { core } => self.core_wake(now, core, worker),
            Event::StealTry { core } => self.steal_try(now, core, worker),
            Event::TaskRun { core, task } => {
                if self.is_busy(core, now) {
                    self.deques[core]
                        .push_tail(task, now)
                        .expect("software deque is unbounded");
                } else {
                    self.execute_task(now, core, task, worker);
                }
            }
        }
    }

    fn core_wake<W: Worker + ?Sized>(&mut self, now: Time, core: usize, worker: &mut W) {
        if self.is_busy(core, now) {
            return;
        }
        let t = now + self.runtime_cycles(self.costs.dispatch_instrs);
        if let Some(task) = self.deques[core].pop_tail(t) {
            self.steal_fails[core] = 0;
            self.execute_task(t, core, task, worker);
        } else if self.cores > 1 {
            self.events.push(
                now + self.runtime_cycles(self.costs.steal_attempt_instrs),
                Event::StealTry { core },
            );
            self.metrics.incr("cpu.steal_attempts");
        }
        // A single core with an empty deque parks; outstanding bookkeeping
        // wakes it via TaskRun events.
    }

    fn steal_try<W: Worker + ?Sized>(&mut self, now: Time, core: usize, worker: &mut W) {
        if self.is_busy(core, now) {
            return;
        }
        // Random victim among the other cores; the THE protocol's locking
        // shows up as an atomic on the victim's deque metadata line.
        let mut victim = self.rngs[core].next_in_range(self.cores as u64 - 1) as usize;
        if victim >= core {
            victim += 1;
        }
        self.trace.emit(
            now,
            TraceEvent::StealRequest {
                thief: core as u32,
                victim: victim as u32,
            },
        );
        let t = self.memsys.access(
            PortId(core),
            DEQUE_META_BASE + 64 * victim as u64,
            AccessKind::Amo,
            now,
        );
        match self.deques[victim].steal_head(t) {
            Some(task) => {
                self.metrics.incr("cpu.steal_hits");
                self.trace.emit(
                    t,
                    TraceEvent::StealGrant {
                        thief: core as u32,
                        victim: victim as u32,
                    },
                );
                self.steal_fails[core] = 0;
                self.execute_task(t, core, task, worker);
            }
            None => {
                self.trace.emit(
                    t,
                    TraceEvent::StealFail {
                        thief: core as u32,
                        victim: victim as u32,
                    },
                );
                let fails = self.steal_fails[core].min(6);
                self.steal_fails[core] = self.steal_fails[core].saturating_add(1);
                let backoff = self.costs.steal_backoff_instrs << fails;
                self.events
                    .push(t + self.runtime_cycles(backoff), Event::CoreWake { core });
            }
        }
    }

    fn execute_task<W: Worker + ?Sized>(
        &mut self,
        start: Time,
        core: usize,
        task: Task,
        worker: &mut W,
    ) {
        self.trace.emit(
            start,
            TraceEvent::TaskDispatch {
                unit: core as u32,
                ty: task.ty.0,
                task: task.id,
            },
        );
        let mut deque = std::mem::replace(&mut self.deques[core], TaskDeque::new(0));
        let mut ctx = CpuCtx {
            now: start,
            core,
            cur_task: task.id,
            engine: self,
            deque: &mut deque,
            ready: Vec::new(),
            spawned: 0,
        };
        worker.execute(&task, &mut ctx);
        let end = ctx.now;
        let ready = std::mem::take(&mut ctx.ready);
        let spawned = ctx.spawned;
        self.deques[core] = deque;
        self.outstanding += spawned + ready.len() as u64;
        self.metrics.incr("cpu.tasks");
        self.metrics.incr(&format!("core{core}.tasks"));
        self.metrics
            .add(&format!("core{core}.busy_ps"), (end - start).as_ps());
        self.trace.emit(
            end,
            TraceEvent::TaskComplete {
                unit: core as u32,
                ty: task.ty.0,
                busy_ps: (end - start).as_ps(),
                task: task.id,
            },
        );
        // Greedy continuation: tasks made ready by this core run on this
        // core next (they were pushed LIFO inside the context); nothing else
        // to do beyond waking up.
        for task in ready {
            self.deques[core]
                .push_tail(task, end)
                .expect("software deque is unbounded");
        }
        self.last_useful = self.last_useful.max(end);
        self.watchdog.progress(end, core);
        self.outstanding -= 1;
        self.busy_until[core] = end;
        self.events.push(end, Event::CoreWake { core });
    }
}

/// Per-task execution context on one core.
struct CpuCtx<'e> {
    now: Time,
    core: usize,
    /// Instance id of the task this context executes (the `parent` of its
    /// spawns and the `from` of its argument sends).
    cur_task: u64,
    engine: &'e mut CpuEngine,
    deque: &'e mut TaskDeque,
    /// Tasks whose joins completed during this task's execution.
    ready: Vec<Task>,
    spawned: u64,
}

impl CpuCtx<'_> {
    /// Charge a memory access, hiding `mem_overlap` of the miss penalty
    /// behind the out-of-order window.
    fn mem_access(&mut self, addr: u64, kind: AccessKind) {
        // L1 hits are fully pipelined; only the portion beyond the hit
        // latency can be (partially) hidden by the OOO window.
        let hit = self.engine.core_params.clock.period();
        let full = self
            .engine
            .memsys
            .access(PortId(self.core), addr, kind, self.now);
        let raw = full - self.now;
        let exposed = if raw > hit {
            let extra = raw - hit;
            let hidden = (extra.as_ps() as f64 * self.engine.core_params.mem_overlap) as u64;
            raw - Time::from_ps(hidden)
        } else {
            raw
        };
        self.now += exposed;
    }
}

impl TaskContext for CpuCtx<'_> {
    fn spawn(&mut self, task: Task) {
        self.now += self.engine.runtime_cycles(self.engine.costs.spawn_instrs);
        let task = task.with_id(self.engine.alloc_task_id());
        self.engine.trace.emit(
            self.now,
            TraceEvent::Spawn {
                unit: self.core as u32,
                ty: task.ty.0,
                parent: self.cur_task,
                child: task.id,
            },
        );
        self.spawned += 1;
        self.deque
            .push_tail(task, self.now)
            .expect("software deque is unbounded");
    }

    fn send_arg(&mut self, k: Continuation, value: u64) {
        self.now += self
            .engine
            .runtime_cycles(self.engine.costs.send_arg_instrs);
        match k {
            Continuation::Host { slot } => {
                self.engine.host[slot as usize] = Some(value);
            }
            Continuation::PStore { entry, slot, .. } => {
                // Atomic decrement of the join counter in shared memory.
                self.mem_access(JOIN_FRAME_BASE + 64 * entry as u64, AccessKind::Amo);
                let join_target = self.engine.pending[entry as usize]
                    .as_ref()
                    .map(|c| c.id)
                    .unwrap_or(0);
                self.engine.trace.emit(
                    self.now,
                    TraceEvent::PStoreJoin {
                        tile: 0,
                        slot,
                        task: join_target,
                        from: self.cur_task,
                    },
                );
                let cell = self.engine.pending[entry as usize]
                    .as_mut()
                    .expect("argument sent to a freed runtime frame");
                if let Some(task) = cell.fill(slot, value) {
                    self.engine.pending[entry as usize] = None;
                    self.engine.pending_free.push(entry);
                    self.ready.push(task);
                }
            }
        }
    }

    fn make_successor_with(
        &mut self,
        ty: TaskTypeId,
        k: Continuation,
        join: u8,
        preset: &[(u8, u64)],
    ) -> Continuation {
        self.now += self
            .engine
            .runtime_cycles(self.engine.costs.successor_instrs);
        let id = self.engine.alloc_task_id();
        let mut pending = PendingTask::new(ty, k, join).with_id(id);
        for &(slot, value) in preset {
            pending = pending.preset(slot, value);
        }
        let entry = match self.engine.pending_free.pop() {
            Some(e) => {
                self.engine.pending[e as usize] = Some(pending);
                e
            }
            None => {
                self.engine.pending.push(Some(pending));
                (self.engine.pending.len() - 1) as u32
            }
        };
        // Initialize the frame's join-counter line.
        self.mem_access(JOIN_FRAME_BASE + 64 * entry as u64, AccessKind::Write);
        Continuation::pstore(0, entry, 0)
    }

    fn compute(&mut self, ops: u64) {
        let cycles = self.engine.profile.cpu_cycles(ops);
        self.now += self.engine.core_params.clock.cycles_to_time(cycles);
    }

    fn load(&mut self, addr: u64, _bytes: u32) {
        self.mem_access(addr, AccessKind::Read);
    }

    fn store(&mut self, addr: u64, _bytes: u32) {
        self.mem_access(addr, AccessKind::Write);
    }

    fn amo(&mut self, addr: u64) {
        self.mem_access(addr, AccessKind::Amo);
    }

    fn dma_read(&mut self, addr: u64, bytes: u64) {
        // The CPU has no DMA engine: a burst is a software streaming loop.
        let line = self.engine.memsys.line_bytes() as u64;
        if bytes == 0 {
            return;
        }
        let first = addr & !(line - 1);
        let last = (addr + bytes - 1) & !(line - 1);
        let mut a = first;
        loop {
            self.mem_access(a, AccessKind::Read);
            if a == last {
                break;
            }
            a += line;
        }
    }

    fn dma_write(&mut self, addr: u64, bytes: u64) {
        let line = self.engine.memsys.line_bytes() as u64;
        if bytes == 0 {
            return;
        }
        let first = addr & !(line - 1);
        let last = (addr + bytes - 1) & !(line - 1);
        let mut a = first;
        loop {
            self.mem_access(a, AccessKind::Write);
            if a == last {
                break;
            }
            a += line;
        }
    }

    fn mem(&mut self) -> &mut Memory {
        &mut self.engine.mem
    }
}

impl Engine for CpuEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Cpu
    }

    fn units(&self) -> usize {
        self.cores
    }

    fn clock(&self) -> pxl_sim::Clock {
        self.core_params.clock.clone()
    }

    fn memory(&self) -> &Memory {
        CpuEngine::memory(self)
    }

    fn mem_mut(&mut self) -> &mut Memory {
        CpuEngine::mem_mut(self)
    }

    fn metrics(&self) -> &Metrics {
        CpuEngine::metrics(self)
    }

    fn host_result(&self, slot: u8) -> Option<u64> {
        CpuEngine::host_result(self, slot)
    }

    fn run(&mut self, workload: Workload<'_>) -> Result<AccelResult, AccelError> {
        match workload {
            Workload::Dynamic { worker, root } => CpuEngine::run(self, worker, root),
            other => Err(AccelError::Unsupported(format!(
                "the CPU baseline runs dynamic task graphs, not {}",
                other.shape()
            ))),
        }
    }

    fn run_until(
        &mut self,
        workload: Workload<'_>,
        pause_at: Option<Time>,
    ) -> Result<RunStatus, AccelError> {
        match workload {
            Workload::Dynamic { worker, root } => {
                CpuEngine::launch(self, root);
                CpuEngine::run_until(self, worker, pause_at)
            }
            other => Err(AccelError::Unsupported(format!(
                "the CPU baseline runs dynamic task graphs, not {}",
                other.shape()
            ))),
        }
    }

    fn snapshot(&self) -> Snapshot {
        CpuEngine::snapshot(self)
    }

    fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        CpuEngine::restore(self, snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIB: TaskTypeId = TaskTypeId(0);
    const SUM: TaskTypeId = TaskTypeId(1);

    struct FibWorker;
    impl Worker for FibWorker {
        fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
            let k = task.k;
            if task.ty == FIB {
                let n = task.args[0];
                ctx.compute(2);
                if n < 2 {
                    ctx.send_arg(k, n);
                } else {
                    let kk = ctx.make_successor(SUM, k, 2);
                    ctx.spawn(Task::new(FIB, kk.with_slot(1), &[n - 2]));
                    ctx.spawn(Task::new(FIB, kk.with_slot(0), &[n - 1]));
                }
            } else {
                ctx.compute(1);
                ctx.send_arg(k, task.args[0] + task.args[1]);
            }
        }
    }

    fn fib(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib(n - 1) + fib(n - 2)
        }
    }

    fn run_fib(cores: usize, n: u64) -> CpuResult {
        let mut cpu = CpuEngine::new(cores, ExecProfile::scalar());
        cpu.run(&mut FibWorker, Task::new(FIB, Continuation::host(0), &[n]))
            .expect("fib must complete")
    }

    #[test]
    fn one_core_computes_fib() {
        let out = run_fib(1, 14);
        assert_eq!(out.result, fib(14));
        assert!(out.metrics.get("cpu.tasks") > 100);
    }

    #[test]
    fn multicore_scales_and_matches() {
        let n = 16;
        let t1 = run_fib(1, n);
        let t4 = run_fib(4, n);
        assert_eq!(t4.result, fib(n));
        assert!(
            t4.elapsed < t1.elapsed,
            "4 cores ({}) must beat 1 core ({})",
            t4.elapsed,
            t1.elapsed
        );
        assert!(t4.metrics.get("cpu.steal_hits") > 0);
    }

    #[test]
    fn deterministic() {
        let a = run_fib(4, 14);
        let b = run_fib(4, 14);
        assert_eq!(a.elapsed, b.elapsed);
    }

    #[test]
    fn snapshot_restore_resumes_byte_identically() {
        let n = 15;
        let root = || Task::new(FIB, Continuation::host(0), &[n]);
        let mk = || {
            let mut cpu = CpuEngine::new(4, ExecProfile::scalar());
            cpu.set_trace_capacity(4096);
            cpu
        };
        let reference = {
            let mut cpu = mk();
            cpu.run(&mut FibWorker, root()).expect("reference run")
        };
        let pause = Time::from_ps(reference.elapsed.as_ps() / 2);

        let mut paused = mk();
        paused.launch(root());
        match paused.run_until(&mut FibWorker, Some(pause)).unwrap() {
            RunStatus::Paused { at } => assert_eq!(at, pause),
            RunStatus::Finished(_) => panic!("fib must still be in flight at {pause}"),
        }
        let blob = paused.snapshot().to_json();
        let snap = Snapshot::from_json(&blob).expect("snapshot survives its wire format");
        let mut restored = mk();
        restored
            .restore(&snap)
            .expect("restore into a fresh engine");

        let finish = |cpu: &mut CpuEngine| match cpu.run_until(&mut FibWorker, None) {
            Ok(RunStatus::Finished(out)) => out,
            other => panic!("resumed leg: {other:?}"),
        };
        let a = finish(&mut paused);
        let b = finish(&mut restored);
        for (label, out) in [("paused", &a), ("restored", &b)] {
            assert_eq!(out.result, reference.result, "{label} result");
            assert_eq!(out.elapsed, reference.elapsed, "{label} elapsed");
            assert_eq!(
                out.metrics.to_json(),
                reference.metrics.to_json(),
                "{label} metrics"
            );
            assert_eq!(
                out.trace.to_jsonl(),
                reference.trace.to_jsonl(),
                "{label} trace"
            );
        }

        // A core-count mismatch is rejected rather than silently resumed.
        let mut narrow = CpuEngine::new(2, ExecProfile::scalar());
        let err = narrow.restore(&snap).expect_err("core mismatch");
        assert!(matches!(err, SnapshotError::Malformed(_)), "got {err}");
    }

    #[test]
    fn software_spawn_is_much_slower_than_hardware() {
        // The same fib on a 1-PE accelerator vs one CPU core: the CPU core
        // at 1 GHz with identical ExecProfile must still pay far more time
        // per task because runtime primitives cost tens of instructions.
        let cpu = run_fib(1, 12);
        let cpu_ns_per_task = cpu.elapsed.as_ns_f64() / cpu.metrics.get("cpu.tasks") as f64;
        let mut accel =
            pxl_arch::FlexEngine::new(pxl_arch::AccelConfig::flex(1, 1), ExecProfile::scalar());
        let out = accel
            .run(&mut FibWorker, Task::new(FIB, Continuation::host(0), &[12]))
            .unwrap();
        let accel_ns_per_task = out.elapsed.as_ns_f64() / out.metrics.get("accel.tasks") as f64;
        // At 1/5 the clock rate, the accelerator should still be competitive
        // per task thanks to cheap task management.
        assert!(
            cpu_ns_per_task > accel_ns_per_task * 0.5,
            "cpu {cpu_ns_per_task:.1} ns/task vs accel {accel_ns_per_task:.1} ns/task"
        );
    }

    struct LeakyWorker;
    impl Worker for LeakyWorker {
        fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
            let _ = ctx.make_successor(SUM, task.k, 2);
        }
    }

    #[test]
    fn zedboard_a9_configuration_runs_and_is_slower() {
        use pxl_mem::zedboard::{zedboard_cpu_core, zedboard_cpu_memory};
        let root = Task::new(FIB, Continuation::host(0), &[14]);
        let big = run_fib(2, 14);
        let mut a9 = CpuEngine::with_params(
            2,
            ExecProfile::scalar(),
            zedboard_cpu_core(),
            zedboard_cpu_memory(),
            SoftwareCosts::default(),
        );
        let out = a9.run(&mut FibWorker, root).unwrap();
        assert_eq!(out.result, fib(14));
        assert!(
            out.elapsed > big.elapsed,
            "667 MHz dual-issue A9s ({}) must trail the 1 GHz four-issue cores ({})",
            out.elapsed,
            big.elapsed
        );
    }

    #[test]
    fn lower_runtime_ipc_slows_the_runtime() {
        let run = |ipc: f64| {
            let mut cpu = CpuEngine::with_params(
                2,
                ExecProfile::scalar(),
                pxl_sim::config::CpuCoreParams::micro2018(),
                pxl_sim::config::MemoryConfig::micro2018(),
                SoftwareCosts {
                    runtime_ipc: ipc,
                    ..SoftwareCosts::default()
                },
            );
            cpu.run(&mut FibWorker, Task::new(FIB, Continuation::host(0), &[14]))
                .unwrap()
                .elapsed
        };
        assert!(run(1.0) > run(3.0), "denser runtime code must be faster");
    }

    #[test]
    fn single_core_never_steals() {
        let out = run_fib(1, 12);
        assert_eq!(out.metrics.get("cpu.steal_attempts"), 0);
        assert_eq!(out.metrics.get("cpu.steal_hits"), 0);
    }

    #[test]
    fn leaks_are_detected() {
        let mut cpu = CpuEngine::new(2, ExecProfile::scalar());
        let err = cpu
            .run(&mut LeakyWorker, Task::new(FIB, Continuation::host(0), &[]))
            .unwrap_err();
        assert_eq!(err, AccelError::LeakedPending { count: 1 });
    }

    #[test]
    fn memory_flows_through_cpu_l1() {
        struct MemWorker;
        impl Worker for MemWorker {
            fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
                let mut sum = 0u64;
                for i in 0..64u64 {
                    sum += ctx.read_u32(0x2000 + 4 * i) as u64;
                }
                ctx.send_arg(task.k, sum);
            }
        }
        let mut cpu = CpuEngine::new(1, ExecProfile::scalar());
        for i in 0..64u64 {
            cpu.mem_mut().write_u32(0x2000 + 4 * i, 2 * i as u32);
        }
        let out = cpu
            .run(&mut MemWorker, Task::new(FIB, Continuation::host(0), &[]))
            .unwrap();
        assert_eq!(out.result, (0..64).map(|i| 2 * i).sum::<u64>());
        assert!(out.metrics.get("mem.l1_hits") > 0);
    }
}
