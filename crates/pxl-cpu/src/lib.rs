//! The software baseline: a multicore CPU running a Cilk-style task runtime.
//!
//! The paper compares its accelerators against "an optimized parallel
//! software implementation using Intel Cilk Plus" on one to eight four-issue
//! out-of-order cores (Table III). This crate models that baseline by
//! executing *the same* [`pxl_model::Worker`] benchmarks through a software
//! work-stealing runtime whose primitives cost tens-to-hundreds of
//! instructions instead of the accelerator's few cycles — the asymmetry the
//! paper identifies as the key advantage of hardware task management
//! ("A work stealing operation may require hundreds of instructions in
//! software, but only needs several cycles on the accelerator",
//! Section V-D1).
//!
//! Each core:
//!
//! * runs at 1 GHz with an effective-IPC model for runtime code and the
//!   benchmark's [`pxl_model::ExecProfile`] CPU rate for kernel code
//!   (capturing `-O3` + NEON auto-vectorization);
//! * owns a THE-protocol-style work-stealing deque;
//! * accesses memory through its private L1 in the shared MOESI hierarchy
//!   of [`pxl_mem`], with an out-of-order overlap factor that hides part of
//!   each miss behind independent work;
//! * performs joins in shared memory: every `send_arg` pays an atomic
//!   update on the pending task's join-counter cache line, so join-counter
//!   ping-pong between cores emerges from the coherence model.

pub mod engine;

pub use engine::{CpuEngine, CpuResult, SoftwareCosts};
