//! Executing a [`RunSpec`]: the one validated path from a serializable
//! request to a [`RunOutcome`].
//!
//! [`execute`] turns a spec into a finished, golden-checked run;
//! [`measure`] additionally folds in the energy/resource models to
//! produce the [`Measurement`] tuple the design-space explorer ranks.
//! Both report whole-program time (host initialization plus kernel),
//! matching the paper's methodology: "performance numbers are obtained by
//! comparing whole program execution time, which include initialization
//! and data transfers".
//!
//! The lower-level [`try_run_on`]/[`run_on`] helpers run an
//! already-instantiated benchmark on an already-built engine; every
//! driver and the `pxl-serve` job server go through this module, so a
//! spec means the same run everywhere.

use pxl_apps::{by_name, Benchmark};
use pxl_arch::{Engine, EngineKind, Workload};
use pxl_cost::resources::TileResources;
use pxl_cost::EnergyModel;
use pxl_dse::{Measurement, PointArch};
use pxl_sim::{Metrics, Time, Timeline, Tracer};

use crate::{FlowError, RunSpec, SimulationBuilder};

/// Host memcpy bandwidth used to charge initialization time for the
/// benchmark's data footprint (bytes/second). Charged identically to CPU
/// and accelerator runs — on the integrated SoC both engines read the same
/// shared memory.
const INIT_BW: f64 = 25.6e9;

pub(crate) fn init_time(footprint_bytes: u64) -> Time {
    Time::from_ps((footprint_bytes as f64 / INIT_BW * 1e12) as u64)
}

/// Outcome of one validated simulation run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Benchmark name.
    pub bench: String,
    /// Engine label ("flex", "lite", "central", "cpu", "zedflex",
    /// "zedcpu").
    pub engine: String,
    /// PEs or cores used.
    pub units: usize,
    /// Kernel time (simulated).
    pub kernel: Time,
    /// Whole-program time: initialization + kernel.
    pub whole: Time,
    /// Engine + memory metrics.
    pub metrics: Metrics,
    /// Structured event trace (empty unless tracing was enabled).
    pub trace: Tracer,
    /// Windowed telemetry timeline (empty unless a telemetry policy was
    /// set). Not part of [`RunOutcome::to_jsonl`] — export it separately
    /// with [`pxl_sim::Timeline::to_jsonl`].
    pub timeline: Timeline,
}

impl RunOutcome {
    /// Whole-program seconds.
    pub fn seconds(&self) -> f64 {
        self.whole.as_secs_f64()
    }

    /// Renders the outcome as one JSONL record: identity, times, a summary
    /// of the headline metrics (steals, P-Store high-water mark, L1 miss
    /// rate, DRAM traffic), and the full metrics registry.
    pub fn to_jsonl(&self) -> String {
        let m = &self.metrics;
        let l1_refs = m.get("mem.l1_hits") + m.get("mem.l1_misses");
        let l1_miss_rate = if l1_refs == 0 {
            0.0
        } else {
            m.get("mem.l1_misses") as f64 / l1_refs as f64
        };
        let steal_attempts = m.get("accel.steal_attempts") + m.get("cpu.steal_attempts");
        let steal_hits = m.get("accel.steal_hits") + m.get("cpu.steal_hits");
        format!(
            concat!(
                "{{\"bench\":\"{}\",\"engine\":\"{}\",\"units\":{},",
                "\"kernel_ps\":{},\"whole_ps\":{},",
                "\"steal_attempts\":{},\"steal_hits\":{},",
                "\"pstore_peak_sum\":{},\"l1_miss_rate\":{:.6},",
                "\"dram_bytes\":{},\"trace_events\":{},\"trace_dropped\":{},\"metrics\":{}}}"
            ),
            self.bench,
            self.engine,
            self.units,
            self.kernel.as_ps(),
            self.whole.as_ps(),
            steal_attempts,
            steal_hits,
            m.get("accel.pstore_peak_sum"),
            l1_miss_rate,
            m.get("mem.dram_bytes"),
            self.trace.len(),
            m.get("trace.dropped"),
            m.to_json(),
        )
    }
}

/// Writes one [`RunOutcome::to_jsonl`] record per outcome to `path`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_jsonl(path: &std::path::Path, outcomes: &[RunOutcome]) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    for out in outcomes {
        writeln!(f, "{}", out.to_jsonl())?;
    }
    f.into_inner()?.flush()
}

/// Why a run failed, with the failing stage typed.
#[derive(Debug)]
pub enum RunError {
    /// The spec names a benchmark [`pxl_apps::by_name`] does not know.
    UnknownBenchmark(String),
    /// The engine could not be constructed from the spec.
    Build(FlowError),
    /// The simulation itself failed (deadlock, watchdog, capacity).
    Sim(String),
    /// A checkpoint snapshot could not be restored (wrong engine family,
    /// mismatched configuration, version or checksum failure).
    Snapshot(pxl_sim::SnapshotError),
    /// The run completed but its output failed golden validation. The
    /// finished outcome rides along so fault-injection harnesses can still
    /// report the corrupted run's timing, metrics and trace.
    WrongResult {
        /// The validation failure, in [`try_run_on`]'s message format.
        message: String,
        /// The (invalid) completed run.
        outcome: Box<RunOutcome>,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::UnknownBenchmark(name) => write!(f, "unknown benchmark {name:?}"),
            RunError::Build(e) => write!(f, "{e}"),
            RunError::Sim(message) => write!(f, "{message}"),
            RunError::Snapshot(e) => write!(f, "snapshot restore failed: {e}"),
            RunError::WrongResult { message, .. } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<FlowError> for RunError {
    fn from(e: FlowError) -> Self {
        RunError::Build(e)
    }
}

/// Runs `bench` on any engine behind the [`Engine`] trait with typed
/// failures: sets up inputs, picks the workload shape the engine executes
/// (rounds for LiteArch, a dynamic task graph otherwise), validates the
/// output against the golden reference, and charges initialization time.
///
/// Returns `Ok(None)` when the engine is LiteArch and the benchmark has no
/// LiteArch mapping.
///
/// # Errors
///
/// [`RunError::Sim`] if the simulation fails; [`RunError::WrongResult`] —
/// carrying the completed outcome — if the output fails golden validation.
pub fn run_checked(
    engine: &mut dyn Engine,
    bench: &dyn Benchmark,
    label: &str,
) -> Result<Option<RunOutcome>, RunError> {
    let units = engine.units();
    let name = bench.meta().name;
    let (footprint, out) = match engine.kind() {
        EngineKind::Lite => {
            let Some(inst) = bench.lite(engine.mem_mut()) else {
                return Ok(None);
            };
            let mut worker = inst.worker;
            let mut driver = inst.driver;
            let out = engine
                .run(Workload::rounds(worker.as_mut(), driver.as_mut()))
                .map_err(|e| RunError::Sim(format!("{name} on {label}/{units}u failed: {e}")))?;
            (inst.footprint_bytes, out)
        }
        EngineKind::Flex | EngineKind::Hier | EngineKind::Central | EngineKind::Cpu => {
            let inst = bench.flex(engine.mem_mut());
            let mut worker = inst.worker;
            let out = engine
                .run(Workload::dynamic(worker.as_mut(), inst.root))
                .map_err(|e| RunError::Sim(format!("{name} on {label}/{units}u failed: {e}")))?;
            (inst.footprint_bytes, out)
        }
    };
    let check = bench.check(engine.memory(), out.result);
    let outcome = RunOutcome {
        bench: name.to_owned(),
        engine: label.to_owned(),
        units,
        kernel: out.elapsed,
        whole: out.elapsed + init_time(footprint),
        metrics: out.metrics,
        trace: out.trace,
        timeline: out.timeline,
    };
    if let Err(e) = check {
        return Err(RunError::WrongResult {
            message: format!("{name} on {label}/{units}u wrong: {e}"),
            outcome: Box::new(outcome),
        });
    }
    let dropped = outcome.metrics.get("trace.dropped");
    if dropped > 0 {
        eprintln!(
            "[trace] warning: {name} on {label}/{units}u dropped {dropped} trace \
             event(s); the trace (and any profile built from it) is incomplete"
        );
    }
    Ok(Some(outcome))
}

/// [`run_checked`] with failures flattened to strings — the fallible path
/// the design-space explorer uses, where one diverging configuration must
/// not sink a sweep.
///
/// Returns `Ok(None)` when the engine is LiteArch and the benchmark has no
/// LiteArch mapping.
///
/// # Errors
///
/// Returns the simulation or golden-validation failure as a message.
pub fn try_run_on(
    engine: &mut dyn Engine,
    bench: &dyn Benchmark,
    label: &str,
) -> Result<Option<RunOutcome>, String> {
    run_checked(engine, bench, label).map_err(|e| e.to_string())
}

/// The panicking wrapper over [`try_run_on`] the experiment binaries use.
///
/// Returns `None` when the engine is LiteArch and the benchmark has no
/// LiteArch mapping.
///
/// # Panics
///
/// Panics if the simulation fails or the output does not validate —
/// experiment results must never silently ship wrong data.
pub fn run_on(engine: &mut dyn Engine, bench: &dyn Benchmark, label: &str) -> Option<RunOutcome> {
    try_run_on(engine, bench, label).unwrap_or_else(|e| panic!("{e}"))
}

impl SimulationBuilder {
    /// The single construction path from a serializable [`RunSpec`]:
    /// resolves the benchmark's execution profile (unless the spec
    /// overrides it), targets the spec's design point, and threads trace
    /// capacity and the fault plan through.
    ///
    /// # Errors
    ///
    /// [`FlowError::InvalidConfig`] when the spec needs the benchmark's own
    /// profile but names an unknown benchmark. (Design-point validation
    /// happens later, at [`SimulationBuilder::build`].)
    pub fn from_run_spec(spec: &RunSpec) -> Result<SimulationBuilder, FlowError> {
        let profile = match spec.profile {
            Some(p) => p,
            None => by_name(&spec.benchmark, spec.scale)
                .ok_or_else(|| {
                    FlowError::InvalidConfig(format!("unknown benchmark {:?}", spec.benchmark))
                })?
                .profile(),
        };
        let mut b = SimulationBuilder::from_point(&spec.point, profile);
        if spec.trace_capacity > 0 {
            b.trace(spec.trace_capacity);
        }
        if let Some(plan) = &spec.faults {
            b.with_faults(plan.clone());
        }
        if let Some(tp) = &spec.telemetry {
            b.telemetry(tp.every_cycles);
        }
        Ok(b)
    }
}

/// Executes a [`RunSpec`] end to end: benchmark lookup, engine
/// construction, simulation, golden validation.
///
/// Returns `Ok(None)` when the spec targets LiteArch and the benchmark has
/// no LiteArch mapping.
///
/// # Errors
///
/// A typed [`RunError`] naming the failing stage.
pub fn execute(spec: &RunSpec) -> Result<Option<RunOutcome>, RunError> {
    let bench = by_name(&spec.benchmark, spec.scale)
        .ok_or_else(|| RunError::UnknownBenchmark(spec.benchmark.clone()))?;
    let mut engine = SimulationBuilder::from_run_spec(spec)?
        .build()
        .map_err(RunError::Build)?;
    run_checked(engine.as_mut(), bench.as_ref(), spec.point.arch.label())
}

/// Executes a [`RunSpec`] and folds in the energy and FPGA-resource
/// models: the [`Measurement`] tuple the design-space explorer builds its
/// Pareto fronts from. `resources` is the per-tile estimate for
/// accelerator points (`None` measures zero LUT/BRAM, as for the CPU
/// baseline).
///
/// # Errors
///
/// Any [`execute`] failure; a spec whose benchmark has no LiteArch
/// mapping fails as [`FlowError::NoLiteVariant`] (a measurement, unlike a
/// run, cannot represent "not applicable").
pub fn measure(spec: &RunSpec, resources: Option<&TileResources>) -> Result<Measurement, RunError> {
    let out = execute(spec)?
        .ok_or_else(|| RunError::Build(FlowError::NoLiteVariant(spec.benchmark.clone())))?;
    Ok(measurement_of(spec, resources, &out))
}

/// Folds the energy and FPGA-resource models into an already-completed
/// outcome of `spec` — the deterministic mapping [`measure`] applies, split
/// out for callers (the `pxl-serve` job server) that need the outcome's
/// metrics *and* the measurement from one simulation.
pub fn measurement_of(
    spec: &RunSpec,
    resources: Option<&TileResources>,
    out: &RunOutcome,
) -> Measurement {
    let model = EnergyModel::default();
    let energy_j = match spec.point.arch {
        PointArch::Cpu => model.cpu_energy(&out.metrics, out.kernel, out.units),
        arch => {
            model.accel_energy_for(&out.metrics, out.kernel, out.units, arch == PointArch::Lite)
        }
    }
    .total_j();
    let (lut, bram18) = match resources {
        Some(r) => {
            let tiles = spec.point.tiles.max(1) as u64;
            (
                u64::from(r.tile.lut) * tiles,
                u64::from(r.tile.bram18) * tiles,
            )
        }
        None => (0, 0),
    };
    Measurement {
        kernel_ps: out.kernel.as_ps(),
        whole_ps: out.whole.as_ps(),
        energy_j,
        lut,
        bram18,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxl_apps::Scale;
    use pxl_dse::DesignPoint;
    use pxl_sim::FaultPlan;

    #[test]
    fn execute_runs_a_spec_on_every_arch() {
        for (point, label) in [
            (DesignPoint::accel(PointArch::Flex, 1, 2), "flex"),
            (DesignPoint::accel(PointArch::Central, 1, 2), "central"),
            (DesignPoint::accel(PointArch::Lite, 1, 2), "lite"),
            (DesignPoint::cpu(2), "cpu"),
        ] {
            let spec = RunSpec::new("uts", Scale::Tiny, point);
            let out = execute(&spec)
                .unwrap_or_else(|e| panic!("uts on {label}: {e}"))
                .expect("uts runs everywhere");
            assert_eq!(out.engine, label);
            assert_eq!(out.units, 2);
            assert!(out.whole > out.kernel, "init time must be charged");
        }
    }

    #[test]
    fn execute_is_deterministic() {
        let spec = RunSpec::new(
            "queens",
            Scale::Tiny,
            DesignPoint::accel(PointArch::Flex, 1, 4),
        )
        .with_trace(1 << 12);
        let a = execute(&spec).unwrap().unwrap();
        let b = execute(&spec).unwrap().unwrap();
        assert_eq!(a.to_jsonl(), b.to_jsonl(), "same spec, same bytes");
    }

    #[test]
    fn lite_without_a_mapping_is_not_an_error_for_execute() {
        let spec = RunSpec::new(
            "cilksort",
            Scale::Tiny,
            DesignPoint::accel(PointArch::Lite, 1, 4),
        );
        assert!(execute(&spec).unwrap().is_none());
        // ...but it is for measure, which must produce a tuple.
        let err = measure(&spec, None).unwrap_err();
        assert!(
            matches!(&err, RunError::Build(FlowError::NoLiteVariant(n)) if n == "cilksort"),
            "{err}"
        );
    }

    #[test]
    fn unknown_benchmarks_fail_typed() {
        let spec = RunSpec::new("nope", Scale::Tiny, DesignPoint::cpu(1));
        let err = execute(&spec).unwrap_err();
        assert!(matches!(&err, RunError::UnknownBenchmark(n) if n == "nope"));
        assert_eq!(err.to_string(), "unknown benchmark \"nope\"");
    }

    #[test]
    fn fault_plans_thread_through_the_spec() {
        let clean = RunSpec::new(
            "uts",
            Scale::Tiny,
            DesignPoint::accel(PointArch::Flex, 1, 2),
        );
        let faulted =
            clean
                .clone()
                .with_faults(FaultPlan::new(7).stall_pe(1, Time::from_us(1), 50_000));
        let a = execute(&clean).unwrap().unwrap();
        let b = execute(&faulted).unwrap().unwrap();
        assert!(
            b.kernel > a.kernel,
            "a stalled PE must slow the run: {} !> {}",
            b.kernel.as_ps(),
            a.kernel.as_ps()
        );
        // Faults on the CPU baseline are rejected at build time.
        let cpu = RunSpec::new("uts", Scale::Tiny, DesignPoint::cpu(2))
            .with_faults(FaultPlan::new(7).kill_pe(0, Time::from_us(1)));
        assert!(matches!(
            execute(&cpu).unwrap_err(),
            RunError::Build(FlowError::InvalidConfig(_))
        ));
    }

    #[test]
    fn measure_matches_execute_timing() {
        let spec = RunSpec::new("queens", Scale::Tiny, DesignPoint::cpu(4));
        let out = execute(&spec).unwrap().unwrap();
        let m = measure(&spec, None).unwrap();
        assert_eq!(m.kernel_ps, out.kernel.as_ps());
        assert_eq!(m.whole_ps, out.whole.as_ps());
        assert!(m.energy_j > 0.0);
        assert_eq!((m.lut, m.bram18), (0, 0));
    }

    #[test]
    fn profile_override_changes_the_run() {
        let base = RunSpec::new("queens", Scale::Tiny, DesignPoint::cpu(2));
        let slow = base
            .clone()
            .with_profile(pxl_model::ExecProfile::new(1.0, 0.01));
        let a = execute(&base).unwrap().unwrap();
        let b = execute(&slow).unwrap().unwrap();
        assert!(
            b.kernel > a.kernel,
            "a slower profile must lengthen the run"
        );
    }
}
