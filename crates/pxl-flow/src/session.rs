//! A pausable, checkpointable simulation run: the stateful counterpart of
//! [`execute`](crate::execute).
//!
//! [`execute`](crate::execute) turns a [`RunSpec`] into a finished outcome
//! in one shot. A [`SimSession`] instead *owns* the running simulation —
//! the engine, the benchmark's worker (and LiteArch driver), and the root
//! task — so a caller can advance it leg by leg, pause at deterministic
//! cycle boundaries, serialize a [`Snapshot`] of the paused state, and
//! later rebuild an identical session from that snapshot with
//! [`SimSession::resume`].
//!
//! The determinism contract (see `docs/checkpoint.md`): a run paused at
//! any boundary, snapshotted, JSON-round-tripped, restored into a fresh
//! session and run to completion produces byte-identical results, metrics
//! and traces to the same spec executed without interruption. The
//! `pxl-serve` job server builds crash recovery and cooperative preemption
//! on exactly this contract.
//!
//! # Examples
//!
//! ```
//! use pxl_apps::Scale;
//! use pxl_dse::{DesignPoint, PointArch};
//! use pxl_flow::{SessionStatus, SimSession, RunSpec};
//!
//! let spec = RunSpec::new("uts", Scale::Tiny, DesignPoint::accel(PointArch::Flex, 1, 2));
//! let mut session = SimSession::start(&spec).unwrap().unwrap();
//! let outcome = session.finish().unwrap();
//! assert_eq!(outcome.engine, "flex");
//! ```

use pxl_apps::{by_name, Benchmark};
use pxl_arch::{Engine, EngineKind, LiteDriver, RunStatus, Workload};
use pxl_model::{Task, Worker};
use pxl_sim::{Clock, Snapshot, Time};

use crate::run::init_time;
use crate::{RunError, RunOutcome, RunSpec, SimulationBuilder};

/// What one [`SimSession::advance`] leg produced.
#[derive(Debug)]
pub enum SessionStatus {
    /// The computation drained and validated; the session is spent.
    Finished(Box<RunOutcome>),
    /// The run paused at the requested boundary with work outstanding; the
    /// engine is at a deterministic point where [`SimSession::snapshot`]
    /// may be taken, and [`SimSession::advance`] continues it.
    Paused {
        /// The boundary the run paused at (simulated time).
        at: Time,
    },
}

/// The workload shape the session re-presents to the engine each leg.
enum Shape {
    /// Dynamic task graph (FlexArch, the central ablation, CPU). The root
    /// is re-passed every leg; engines launch it exactly once.
    Dynamic { root: Task },
    /// Host-driven rounds (LiteArch). Drivers are pure functions of
    /// `(memory, round)`, so a rebuilt driver resumes correctly.
    Rounds { driver: Box<dyn LiteDriver> },
}

/// An owned, in-flight simulation of one [`RunSpec`].
pub struct SimSession {
    spec: RunSpec,
    bench: Box<dyn Benchmark>,
    engine: Box<dyn Engine>,
    worker: Box<dyn Worker>,
    shape: Shape,
    footprint_bytes: u64,
}

impl std::fmt::Debug for SimSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimSession")
            .field("spec", &self.spec.canonical())
            .field("engine", &self.engine.kind().label())
            .finish_non_exhaustive()
    }
}

impl SimSession {
    /// Builds the engine and instantiates the benchmark, ready to advance
    /// from cycle zero.
    ///
    /// Returns `Ok(None)` when the spec targets LiteArch and the benchmark
    /// has no LiteArch mapping (mirroring [`crate::execute`]).
    ///
    /// # Errors
    ///
    /// [`RunError::UnknownBenchmark`] or any engine-construction failure.
    pub fn start(spec: &RunSpec) -> Result<Option<SimSession>, RunError> {
        SimSession::build(spec, None)
    }

    /// Rebuilds a session from a [`Snapshot`] taken by
    /// [`SimSession::snapshot`] on a session of the *same spec*, resuming
    /// at the checkpointed boundary.
    ///
    /// The benchmark's inputs are re-initialized and then overwritten by
    /// the snapshot's memory image, so the restored state is exactly the
    /// paused run's — including any in-place mutations the run had already
    /// made.
    ///
    /// # Errors
    ///
    /// [`RunError::Snapshot`] when the snapshot does not match the spec's
    /// engine family or configuration; otherwise as [`SimSession::start`].
    pub fn resume(spec: &RunSpec, snap: &Snapshot) -> Result<Option<SimSession>, RunError> {
        SimSession::build(spec, Some(snap))
    }

    fn build(spec: &RunSpec, snap: Option<&Snapshot>) -> Result<Option<SimSession>, RunError> {
        let bench = by_name(&spec.benchmark, spec.scale)
            .ok_or_else(|| RunError::UnknownBenchmark(spec.benchmark.clone()))?;
        let mut engine = SimulationBuilder::from_run_spec(spec)?
            .build()
            .map_err(RunError::Build)?;
        let (worker, shape, footprint_bytes) = match engine.kind() {
            EngineKind::Lite => {
                let Some(inst) = bench.lite(engine.mem_mut()) else {
                    return Ok(None);
                };
                (
                    inst.worker,
                    Shape::Rounds {
                        driver: inst.driver,
                    },
                    inst.footprint_bytes,
                )
            }
            EngineKind::Flex | EngineKind::Hier | EngineKind::Central | EngineKind::Cpu => {
                let inst = bench.flex(engine.mem_mut());
                (
                    inst.worker,
                    Shape::Dynamic { root: inst.root },
                    inst.footprint_bytes,
                )
            }
        };
        if let Some(snap) = snap {
            engine.restore(snap).map_err(RunError::Snapshot)?;
        }
        Ok(Some(SimSession {
            spec: spec.clone(),
            bench,
            engine,
            worker,
            shape,
            footprint_bytes,
        }))
    }

    /// The spec this session is running.
    pub fn spec(&self) -> &RunSpec {
        &self.spec
    }

    /// The engine's logic clock — converts the spec's cycle-denominated
    /// checkpoint interval into pause times.
    pub fn clock(&self) -> Clock {
        self.engine.clock()
    }

    /// Serializes the engine's complete state. Call at construction time
    /// or when the last [`SimSession::advance`] returned
    /// [`SessionStatus::Paused`].
    pub fn snapshot(&self) -> Snapshot {
        self.engine.snapshot()
    }

    /// The engine's live metrics registry — counters accumulated so far,
    /// readable mid-run at a paused boundary (the job server's progress
    /// events are built from this).
    pub fn metrics(&self) -> &pxl_sim::Metrics {
        self.engine.metrics()
    }

    /// Runs one leg: to completion when `pause_at` is `None`, otherwise
    /// until the next schedulable step lies beyond `pause_at` (with work
    /// still outstanding). On completion the output is validated against
    /// the benchmark's golden reference and initialization time is charged,
    /// exactly as [`crate::execute`] does.
    ///
    /// # Errors
    ///
    /// [`RunError::Sim`] for simulation failures, [`RunError::WrongResult`]
    /// when the finished run fails golden validation.
    pub fn advance(&mut self, pause_at: Option<Time>) -> Result<SessionStatus, RunError> {
        let label = self.spec.point.arch.label();
        let units = self.engine.units();
        let name = self.bench.meta().name;
        let status = match &mut self.shape {
            Shape::Dynamic { root } => self
                .engine
                .run_until(Workload::dynamic(self.worker.as_mut(), *root), pause_at),
            Shape::Rounds { driver } => self.engine.run_until(
                Workload::rounds(self.worker.as_mut(), driver.as_mut()),
                pause_at,
            ),
        }
        .map_err(|e| RunError::Sim(format!("{name} on {label}/{units}u failed: {e}")))?;
        let out = match status {
            RunStatus::Paused { at } => return Ok(SessionStatus::Paused { at }),
            RunStatus::Finished(out) => out,
        };
        let check = self.bench.check(self.engine.memory(), out.result);
        let outcome = RunOutcome {
            bench: name.to_owned(),
            engine: label.to_owned(),
            units,
            kernel: out.elapsed,
            whole: out.elapsed + init_time(self.footprint_bytes),
            metrics: out.metrics,
            trace: out.trace,
            timeline: out.timeline,
        };
        if let Err(e) = check {
            return Err(RunError::WrongResult {
                message: format!("{name} on {label}/{units}u wrong: {e}"),
                outcome: Box::new(outcome),
            });
        }
        Ok(SessionStatus::Finished(Box::new(outcome)))
    }

    /// Advances with no pause boundary: runs the rest of the computation.
    ///
    /// # Errors
    ///
    /// As [`SimSession::advance`].
    pub fn finish(&mut self) -> Result<RunOutcome, RunError> {
        match self.advance(None)? {
            SessionStatus::Finished(out) => Ok(*out),
            SessionStatus::Paused { .. } => unreachable!("no pause boundary was requested"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execute;
    use pxl_apps::Scale;
    use pxl_dse::{DesignPoint, PointArch};
    use pxl_sim::{FaultPlan, SnapshotError};

    fn points() -> Vec<DesignPoint> {
        vec![
            DesignPoint::accel(PointArch::Flex, 1, 2),
            DesignPoint::accel(PointArch::Central, 1, 2),
            DesignPoint::accel(PointArch::Lite, 1, 2),
            DesignPoint::cpu(2),
        ]
    }

    #[test]
    fn uninterrupted_session_matches_execute() {
        for point in points() {
            let spec = RunSpec::new("uts", Scale::Tiny, point).with_trace(1 << 12);
            let reference = execute(&spec).unwrap().unwrap();
            let mut session = SimSession::start(&spec).unwrap().unwrap();
            let out = session.finish().unwrap();
            assert_eq!(out.to_jsonl(), reference.to_jsonl());
        }
    }

    #[test]
    fn paused_snapshot_resumes_byte_identically_on_every_engine() {
        for point in points() {
            let label = point.arch.label();
            let spec = RunSpec::new("uts", Scale::Tiny, point).with_trace(1 << 12);
            let reference = execute(&spec).unwrap().unwrap();
            let pause = Time::from_ps(reference.kernel.as_ps() / 2);

            let mut session = SimSession::start(&spec).unwrap().unwrap();
            match session.advance(Some(pause)).unwrap() {
                SessionStatus::Paused { at } => assert_eq!(at, pause),
                SessionStatus::Finished(_) => {
                    panic!("{label}: mid-run pause must leave work outstanding")
                }
            }
            // Round-trip the snapshot through its serialized form, as the
            // server's checkpoint files do.
            let snap = Snapshot::from_json(&session.snapshot().to_json()).unwrap();
            let mut restored = SimSession::resume(&spec, &snap).unwrap().unwrap();
            let out = restored.finish().unwrap();
            assert_eq!(
                out.to_jsonl(),
                reference.to_jsonl(),
                "{label}: restored leg"
            );

            // The paused original must finish identically too.
            let out = session.finish().unwrap();
            assert_eq!(out.to_jsonl(), reference.to_jsonl(), "{label}: paused leg");
        }
    }

    #[test]
    fn resume_survives_active_fault_plans() {
        let spec = RunSpec::new(
            "uts",
            Scale::Tiny,
            DesignPoint::accel(PointArch::Flex, 2, 2),
        )
        .with_faults(FaultPlan::new(0xC0FFEE).kill_pe(3, Time::from_ns(500)));
        let reference = execute(&spec).unwrap().unwrap();
        let pause = Time::from_ps(reference.kernel.as_ps() / 2);
        let mut session = SimSession::start(&spec).unwrap().unwrap();
        assert!(matches!(
            session.advance(Some(pause)).unwrap(),
            SessionStatus::Paused { .. }
        ));
        let snap = session.snapshot();
        let mut restored = SimSession::resume(&spec, &snap).unwrap().unwrap();
        let out = restored.finish().unwrap();
        assert_eq!(out.to_jsonl(), reference.to_jsonl());
    }

    #[test]
    fn resume_rejects_a_snapshot_from_another_engine() {
        let flex = RunSpec::new(
            "uts",
            Scale::Tiny,
            DesignPoint::accel(PointArch::Flex, 1, 2),
        );
        let snap = SimSession::start(&flex).unwrap().unwrap().snapshot();
        let cpu = RunSpec::new("uts", Scale::Tiny, DesignPoint::cpu(2));
        let err = SimSession::resume(&cpu, &snap).unwrap_err();
        assert!(
            matches!(
                &err,
                RunError::Snapshot(SnapshotError::EngineMismatch { .. })
            ),
            "{err}"
        );
        assert!(err.to_string().contains("snapshot restore failed"));
    }
}
