//! The ParallelXL design methodology (Section IV of the paper).
//!
//! The paper's flow takes a C++ worker description and an architectural
//! template, elaborates the template with the designer's parameters
//! (architecture, tiles, PEs, queue and P-Store entries, cache size), and
//! emits accelerator RTL. In this reproduction the "RTL" is a validated
//! simulator configuration plus a resource estimate:
//!
//! ```text
//! Worker (Rust impl of pxl_model::Worker)   Architecture template (pxl-arch)
//!                \                               /
//!                 AcceleratorBuilder::build()
//!                          |
//!                 AcceleratorDesign { AccelConfig, resources, device fits }
//! ```
//!
//! [`AcceleratorBuilder`] is the single entry point a designer uses; "design
//! space exploration can be done easily by changing the parameters given to
//! the framework, without rewriting any code" (Section IV-C) — that is
//! [`sweep_cache_sizes`] and [`sweep_pe_counts`].
//!
//! Simulation *runs* are described by the serializable [`RunSpec`] and
//! executed through [`execute`]/[`measure`] (see the [`run`] and [`spec`]
//! modules): one canonical request format shared by every experiment
//! driver and the `pxl-serve` job server.
//!
//! # Examples
//!
//! ```
//! use pxl_flow::AcceleratorBuilder;
//!
//! let design = AcceleratorBuilder::new("queens")
//!     .tiles(4)
//!     .pes_per_tile(4)
//!     .cache_kb(16)
//!     .build()
//!     .unwrap();
//! assert_eq!(design.config.num_pes(), 16);
//! assert!(design.resources.is_some());
//! ```

pub mod run;
pub mod session;
pub mod spec;

pub use run::{
    execute, measure, measurement_of, run_checked, run_on, try_run_on, write_jsonl, RunError,
    RunOutcome,
};
pub use session::{SessionStatus, SimSession};
pub use spec::{CheckpointPolicy, RunSpec, SpecError, TelemetryPolicy};

use pxl_arch::{
    AccelConfig, ArchKind, CentralEngine, ConfigError, Engine, FlexEngine, HierEngine, LiteEngine,
    StealMode,
};
use pxl_cost::resources::{tile_resources, FpgaDevice, TileResources};
use pxl_cpu::{CpuEngine, SoftwareCosts};
use pxl_dse::{Axis, DesignPoint, PointArch, SearchSpace};
use pxl_model::ExecProfile;
use pxl_sim::config::{CpuCoreParams, MemoryConfig};
use pxl_sim::FaultPlan;

/// Errors produced while parsing a specification or elaborating a design.
///
/// The spec-parsing variants carry the offending `key=value` fragment so a
/// caller can point at exactly what was wrong with its input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowError {
    /// A spec token was not of the form `key=value`.
    MalformedPair {
        /// The offending token.
        token: String,
    },
    /// A spec pair used a key the template does not expose.
    UnknownKey {
        /// The unrecognized key.
        key: String,
        /// The value it carried.
        value: String,
    },
    /// A spec value could not be parsed as the key's type.
    InvalidValue {
        /// The key whose value is malformed.
        key: String,
        /// The unparsable value.
        value: String,
        /// What the key expects (e.g. `"a positive integer"`).
        expected: &'static str,
    },
    /// A spec value parsed but violates the key's range constraint.
    OutOfRange {
        /// The key whose value is out of range.
        key: String,
        /// The rejected value.
        value: String,
        /// The violated constraint (e.g. `"must be at least 2"`).
        constraint: &'static str,
    },
    /// The architectural parameters are not realizable, with the violated
    /// constraint typed so callers (e.g. the `pxl-dse` pruner) can report
    /// *why* a design point is infeasible.
    Config(ConfigError),
    /// Some other aspect of the request is invalid (missing worker name,
    /// zero CPU cores, fault plans on the software baseline, ...).
    InvalidConfig(String),
    /// The selected benchmark has no LiteArch variant.
    NoLiteVariant(String),
}

impl From<ConfigError> for FlowError {
    fn from(e: ConfigError) -> Self {
        FlowError::Config(e)
    }
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::MalformedPair { token } => {
                write!(f, "expected key=value, got '{token}'")
            }
            FlowError::UnknownKey { key, value } => {
                write!(f, "unknown key in '{key}={value}'")
            }
            FlowError::InvalidValue {
                key,
                value,
                expected,
            } => write!(f, "'{key}={value}': expected {expected}"),
            FlowError::OutOfRange {
                key,
                value,
                constraint,
            } => write!(f, "'{key}={value}': {constraint}"),
            FlowError::Config(e) => write!(f, "invalid configuration: {e}"),
            FlowError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            FlowError::NoLiteVariant(name) => {
                write!(f, "benchmark '{name}' has no LiteArch mapping")
            }
        }
    }
}

impl std::error::Error for FlowError {}

/// An elaborated accelerator design: simulator configuration, resource
/// estimate, and device-fitting results.
#[derive(Debug, Clone)]
pub struct AcceleratorDesign {
    /// The validated simulator configuration ("the RTL").
    pub config: AccelConfig,
    /// PE/tile resource estimate, when the worker is a known benchmark.
    pub resources: Option<TileResources>,
    /// `(device name, max tiles that fit)` for the paper's two devices.
    pub device_fits: Vec<(&'static str, u32)>,
}

/// Builder over the architectural template's parameters.
#[derive(Debug, Clone)]
pub struct AcceleratorBuilder {
    benchmark: String,
    arch: ArchKind,
    tiles: usize,
    pes_per_tile: usize,
    task_queue_entries: usize,
    pstore_entries: usize,
    cache_bytes: usize,
}

impl AcceleratorBuilder {
    /// Starts a design for the named worker (one of the ten benchmarks, or
    /// any other name for a custom worker without a resource estimate).
    pub fn new(benchmark: impl Into<String>) -> Self {
        AcceleratorBuilder {
            benchmark: benchmark.into(),
            arch: ArchKind::Flex,
            tiles: 4,
            pes_per_tile: 4,
            task_queue_entries: 1024,
            pstore_entries: 4096,
            cache_bytes: 32 * 1024,
        }
    }

    /// Selects FlexArch or LiteArch.
    pub fn arch(&mut self, arch: ArchKind) -> &mut Self {
        self.arch = arch;
        self
    }

    /// Number of tiles.
    pub fn tiles(&mut self, tiles: usize) -> &mut Self {
        self.tiles = tiles;
        self
    }

    /// PEs per tile.
    pub fn pes_per_tile(&mut self, pes: usize) -> &mut Self {
        self.pes_per_tile = pes;
        self
    }

    /// Per-PE task queue entries.
    pub fn task_queue_entries(&mut self, entries: usize) -> &mut Self {
        self.task_queue_entries = entries;
        self
    }

    /// Per-tile P-Store entries.
    pub fn pstore_entries(&mut self, entries: usize) -> &mut Self {
        self.pstore_entries = entries;
        self
    }

    /// Tile cache capacity in KiB.
    pub fn cache_kb(&mut self, kb: usize) -> &mut Self {
        self.cache_bytes = kb * 1024;
        self
    }

    /// Elaborates the design: validates the configuration, estimates
    /// resources, and checks device fitting.
    ///
    /// # Errors
    ///
    /// [`FlowError::InvalidConfig`] if the template parameters are not
    /// realizable.
    pub fn build(&self) -> Result<AcceleratorDesign, FlowError> {
        let mut config = match self.arch {
            ArchKind::Flex => AccelConfig::flex(self.tiles, self.pes_per_tile),
            ArchKind::Lite => AccelConfig::lite(self.tiles, self.pes_per_tile),
            ArchKind::Central => AccelConfig::central(self.tiles, self.pes_per_tile),
        };
        config.task_queue_entries = self.task_queue_entries;
        config.pstore_entries = self.pstore_entries;
        config.memory.accel_l1 = config.memory.accel_l1.clone().with_size(self.cache_bytes);
        // Covers geometry, queue/P-Store capacities and cache realizability
        // (power-of-two number of sets) in one typed check.
        config.validate().map_err(FlowError::Config)?;
        // The central ablation keeps FlexArch's tile hardware and only
        // swaps the queue organization, so it costs flex-tile resources.
        let resources = tile_resources(
            &self.benchmark,
            self.arch != ArchKind::Lite,
            self.pes_per_tile as u32,
            self.cache_bytes,
        );
        let device_fits = match &resources {
            Some(r) => vec![
                (
                    FpgaDevice::artix_7a75t().name,
                    FpgaDevice::artix_7a75t().max_tiles(&r.tile),
                ),
                (
                    FpgaDevice::kintex_7k160t().name,
                    FpgaDevice::kintex_7k160t().max_tiles(&r.tile),
                ),
            ],
            None => Vec::new(),
        };
        Ok(AcceleratorDesign {
            config,
            resources,
            device_fits,
        })
    }
}

impl AcceleratorBuilder {
    /// Parses a textual design specification — the closest analogue of the
    /// parameter files the paper's framework feeds its template elaborator.
    ///
    /// Format: whitespace-separated `key=value` pairs. Keys: `worker`
    /// (benchmark/worker name, required first or via `worker=`), `arch`
    /// (`flex`|`lite`), `tiles`, `pes`, `queue`, `pstore`, `cache_kb`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pxl_flow::AcceleratorBuilder;
    ///
    /// let design = AcceleratorBuilder::from_spec(
    ///     "worker=uts arch=flex tiles=8 pes=4 cache_kb=16 queue=512 pstore=2048",
    /// )
    /// .unwrap()
    /// .build()
    /// .unwrap();
    /// assert_eq!(design.config.num_pes(), 32);
    /// assert_eq!(design.config.task_queue_entries, 512);
    /// ```
    ///
    /// # Errors
    ///
    /// [`FlowError::MalformedPair`] for tokens that are not `key=value`,
    /// [`FlowError::UnknownKey`] for keys the template does not expose,
    /// [`FlowError::InvalidValue`] for unparsable values,
    /// [`FlowError::OutOfRange`] for values outside a key's constraint, and
    /// [`FlowError::InvalidConfig`] for a missing worker name.
    pub fn from_spec(spec: &str) -> Result<AcceleratorBuilder, FlowError> {
        let mut worker: Option<String> = None;
        let mut pending: Vec<(String, String)> = Vec::new();
        for token in spec.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| FlowError::MalformedPair {
                    token: token.to_owned(),
                })?;
            if key == "worker" {
                worker = Some(value.to_owned());
            } else {
                pending.push((key.to_owned(), value.to_owned()));
            }
        }
        let worker =
            worker.ok_or_else(|| FlowError::InvalidConfig("missing worker=<name>".into()))?;
        let mut b = AcceleratorBuilder::new(worker);
        let parse = |key: &str, value: &str, min: usize| -> Result<usize, FlowError> {
            let n: usize = value.parse().map_err(|_| FlowError::InvalidValue {
                key: key.to_owned(),
                value: value.to_owned(),
                expected: "an unsigned integer",
            })?;
            if n < min {
                return Err(FlowError::OutOfRange {
                    key: key.to_owned(),
                    value: value.to_owned(),
                    constraint: match min {
                        1 => "must be at least 1",
                        _ => "must be at least 2",
                    },
                });
            }
            Ok(n)
        };
        for (key, value) in pending {
            match key.as_str() {
                "arch" => match value.as_str() {
                    "flex" => {
                        b.arch(ArchKind::Flex);
                    }
                    "lite" => {
                        b.arch(ArchKind::Lite);
                    }
                    "central" => {
                        b.arch(ArchKind::Central);
                    }
                    _ => {
                        return Err(FlowError::InvalidValue {
                            key,
                            value,
                            expected: "'flex', 'lite' or 'central'",
                        })
                    }
                },
                "tiles" => {
                    b.tiles(parse(&key, &value, 1)?);
                }
                "pes" => {
                    b.pes_per_tile(parse(&key, &value, 1)?);
                }
                "queue" => {
                    b.task_queue_entries(parse(&key, &value, 2)?);
                }
                "pstore" => {
                    b.pstore_entries(parse(&key, &value, 1)?);
                }
                "cache_kb" => {
                    b.cache_kb(parse(&key, &value, 1)?);
                }
                _ => return Err(FlowError::UnknownKey { key, value }),
            }
        }
        Ok(b)
    }
}

/// Elaborates the design a `pxl-dse` [`DesignPoint`] describes: the bridge
/// from the explorer's declarative space back into the design flow.
///
/// # Errors
///
/// [`FlowError::InvalidConfig`] for CPU-baseline points (they have no
/// accelerator design), or any [`AcceleratorBuilder::build`] failure.
pub fn design_for_point(
    benchmark: &str,
    point: &DesignPoint,
) -> Result<AcceleratorDesign, FlowError> {
    let arch = point.arch.arch_kind().ok_or_else(|| {
        FlowError::InvalidConfig("the CPU baseline has no accelerator design".into())
    })?;
    AcceleratorBuilder::new(benchmark)
        .arch(arch)
        .tiles(point.tiles)
        .pes_per_tile(point.pes_per_tile)
        .task_queue_entries(point.task_queue_entries)
        .pstore_entries(point.pstore_entries)
        .cache_kb(point.cache_kb)
        .build()
}

/// Elaborates one design per cache size (the paper's Fig. 9 sweep:
/// 4 KB to 32 KB) — a thin wrapper over a one-axis `pxl-dse`
/// [`SearchSpace`].
///
/// # Errors
///
/// Propagates the first elaboration failure.
pub fn sweep_cache_sizes(
    benchmark: &str,
    cache_kbs: &[usize],
) -> Result<Vec<AcceleratorDesign>, FlowError> {
    let points = SearchSpace::new()
        .benchmarks([benchmark])
        .cache_kb(Axis::list(cache_kbs.iter().copied()))
        .points();
    cache_kbs
        .iter()
        .map(|&kb| {
            let point = points
                .iter()
                .find(|p| p.cache_kb == kb)
                .expect("the axis covers every requested size");
            design_for_point(benchmark, point)
        })
        .collect()
}

/// Elaborates one design per PE count, keeping 4 PEs per tile as in the
/// paper's scalability study (1-, 2-PE configs use a single partial tile)
/// — a thin wrapper over a `pxl-dse` [`SearchSpace`] using the shared
/// [`pxl_dse::pe_geometry`] rule.
///
/// # Errors
///
/// Propagates the first elaboration failure.
pub fn sweep_pe_counts(
    benchmark: &str,
    arch: ArchKind,
    pe_counts: &[usize],
) -> Result<Vec<AcceleratorDesign>, FlowError> {
    let points = SearchSpace::new()
        .benchmarks([benchmark])
        .archs([PointArch::from(arch)])
        .pe_counts(pe_counts.iter().copied())
        .points();
    pe_counts
        .iter()
        .map(|&pes| {
            let point = points
                .iter()
                .find(|p| p.units() == pes)
                .expect("the geometry axis covers every requested PE count");
            design_for_point(benchmark, point)
        })
        .collect()
}

/// What a [`SimulationBuilder`] instantiates.
#[derive(Debug, Clone)]
enum Target {
    /// An accelerator (FlexArch or LiteArch) from a validated config.
    Accel(AccelConfig),
    /// The multicore software baseline.
    Cpu {
        cores: usize,
        core: CpuCoreParams,
        memory: MemoryConfig,
        costs: SoftwareCosts,
    },
}

/// One entry point for constructing any execution engine behind the
/// [`Engine`] trait: FlexArch, LiteArch, or the CPU baseline.
///
/// This is the bridge from the design flow to the simulator: elaborate a
/// design with [`AcceleratorBuilder`], then hand it (or a raw
/// [`AccelConfig`], or CPU parameters) to `SimulationBuilder` to get a
/// boxed engine ready to run workloads.
///
/// # Examples
///
/// ```
/// use pxl_flow::{AcceleratorBuilder, SimulationBuilder};
/// use pxl_model::ExecProfile;
///
/// let design = AcceleratorBuilder::new("queens").tiles(1).build().unwrap();
/// let engine = SimulationBuilder::from_design(&design, ExecProfile::scalar())
///     .trace(4096)
///     .build()
///     .unwrap();
/// assert_eq!(engine.kind().label(), "flex");
/// assert_eq!(engine.units(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    target: Target,
    profile: ExecProfile,
    trace_capacity: usize,
    telemetry_every: u64,
    faults: Option<FaultPlan>,
}

impl SimulationBuilder {
    /// Targets the accelerator described by an elaborated design.
    pub fn from_design(design: &AcceleratorDesign, profile: ExecProfile) -> Self {
        SimulationBuilder::from_config(design.config.clone(), profile)
    }

    /// Targets an accelerator from a raw configuration (FlexArch or
    /// LiteArch according to `config.arch`).
    pub fn from_config(config: AccelConfig, profile: ExecProfile) -> Self {
        SimulationBuilder {
            target: Target::Accel(config),
            profile,
            trace_capacity: 0,
            telemetry_every: 0,
            faults: None,
        }
    }

    /// Targets whatever a `pxl-dse` [`DesignPoint`] describes: FlexArch or
    /// LiteArch from the point's elaborated configuration, or the Table III
    /// software baseline for CPU points — the one constructor the
    /// design-space explorer needs to simulate any point it enumerates.
    ///
    /// # Examples
    ///
    /// ```
    /// use pxl_dse::DesignPoint;
    /// use pxl_flow::SimulationBuilder;
    /// use pxl_model::ExecProfile;
    ///
    /// let engine = SimulationBuilder::from_point(&DesignPoint::cpu(2), ExecProfile::scalar())
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(engine.kind().label(), "cpu");
    /// assert_eq!(engine.units(), 2);
    /// ```
    pub fn from_point(point: &DesignPoint, profile: ExecProfile) -> Self {
        match point.accel_config() {
            Some(config) => SimulationBuilder::from_config(config, profile),
            None => SimulationBuilder::cpu(point.units(), profile),
        }
    }

    /// Targets the software baseline with `cores` Table III cores.
    pub fn cpu(cores: usize, profile: ExecProfile) -> Self {
        SimulationBuilder::cpu_with(
            cores,
            profile,
            CpuCoreParams::micro2018(),
            MemoryConfig::micro2018(),
            SoftwareCosts::default(),
        )
    }

    /// Targets the software baseline with explicit core, memory and runtime
    /// parameters (e.g. the Zedboard's Cortex-A9 configuration).
    pub fn cpu_with(
        cores: usize,
        profile: ExecProfile,
        core: CpuCoreParams,
        memory: MemoryConfig,
        costs: SoftwareCosts,
    ) -> Self {
        SimulationBuilder {
            target: Target::Cpu {
                cores,
                core,
                memory,
                costs,
            },
            profile,
            trace_capacity: 0,
            telemetry_every: 0,
            faults: None,
        }
    }

    /// Replaces the execution profile.
    pub fn profile(&mut self, profile: ExecProfile) -> &mut Self {
        self.profile = profile;
        self
    }

    /// Enables structured event tracing with a bounded buffer of `capacity`
    /// records per source (zero, the default, disables tracing).
    pub fn trace(&mut self, capacity: usize) -> &mut Self {
        self.trace_capacity = capacity;
        self
    }

    /// Enables in-run telemetry sampling every `every_cycles` engine-clock
    /// cycles (zero, the default, records no timeline). Telemetry is pure
    /// observation: enabling it never changes results, metrics or traces.
    pub fn telemetry(&mut self, every_cycles: u64) -> &mut Self {
        self.telemetry_every = every_cycles;
        self
    }

    /// Arms a deterministic fault-injection plan for the run. Only
    /// accelerator targets accept one — the software baseline has no
    /// modelled fault surface — and the plan is validated against the
    /// configuration (PE and tile indices, LiteArch's restricted fault
    /// vocabulary) at [`SimulationBuilder::build`].
    pub fn with_faults(&mut self, plan: FaultPlan) -> &mut Self {
        self.faults = Some(plan);
        self
    }

    /// Applies a closure to the accelerator configuration (no-op for the
    /// CPU target), for knobs the builder does not surface directly.
    pub fn configure(&mut self, f: impl FnOnce(&mut AccelConfig)) -> &mut Self {
        if let Target::Accel(config) = &mut self.target {
            f(config);
        }
        self
    }

    /// Validates the target and constructs the engine.
    ///
    /// # Errors
    ///
    /// [`FlowError::InvalidConfig`] when the accelerator configuration is
    /// not realizable or the CPU has zero cores.
    pub fn build(&self) -> Result<Box<dyn Engine>, FlowError> {
        match &self.target {
            Target::Accel(config) => {
                let mut config = config.clone();
                config.trace_capacity = self.trace_capacity;
                config.telemetry_every_cycles = self.telemetry_every;
                if let Some(plan) = &self.faults {
                    config.fault_plan = Some(plan.clone());
                }
                // Validate up front so callers get the typed constraint
                // (the engines re-validate, but only report strings).
                config.validate().map_err(FlowError::Config)?;
                // Unwrap AccelError::InvalidConfig so FlowError does not
                // stack a second "invalid configuration:" prefix on it.
                let lift = |e: pxl_arch::AccelError| match e {
                    pxl_arch::AccelError::InvalidConfig(msg) => FlowError::InvalidConfig(msg),
                    other => FlowError::InvalidConfig(other.to_string()),
                };
                // A multi-chip cluster with hierarchical stealing swaps in
                // the HierPolicy engine; flat-stealing clusters and all
                // single-chip configs run the stock engines (the link tier
                // lives in the shared fabric, so flat clusters still pay it).
                let hierarchical = config.cluster.is_some_and(|c| {
                    c.chips > 1 && matches!(c.stealing, StealMode::Hierarchical { .. })
                });
                Ok(match config.arch {
                    ArchKind::Flex if hierarchical => {
                        Box::new(HierEngine::try_new(config, self.profile).map_err(lift)?)
                    }
                    ArchKind::Flex => {
                        Box::new(FlexEngine::try_new(config, self.profile).map_err(lift)?)
                    }
                    ArchKind::Lite => {
                        Box::new(LiteEngine::try_new(config, self.profile).map_err(lift)?)
                    }
                    ArchKind::Central => {
                        Box::new(CentralEngine::try_new(config, self.profile).map_err(lift)?)
                    }
                })
            }
            Target::Cpu {
                cores,
                core,
                memory,
                costs,
            } => {
                if self.faults.is_some() {
                    return Err(FlowError::InvalidConfig(
                        "fault injection requires an accelerator target; \
                         the CPU baseline has no modelled fault surface"
                            .into(),
                    ));
                }
                if *cores == 0 {
                    return Err(FlowError::InvalidConfig(
                        "the CPU baseline needs at least one core".into(),
                    ));
                }
                let mut engine = CpuEngine::with_params(
                    *cores,
                    self.profile,
                    core.clone(),
                    memory.clone(),
                    *costs,
                );
                if self.trace_capacity > 0 {
                    engine.set_trace_capacity(self.trace_capacity);
                }
                if self.telemetry_every > 0 {
                    engine.set_telemetry_every(self.telemetry_every);
                }
                Ok(Box::new(engine))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_design_elaborates() {
        let d = AcceleratorBuilder::new("uts").build().unwrap();
        assert_eq!(d.config.arch, ArchKind::Flex);
        assert_eq!(d.config.num_pes(), 16);
        assert!(d.resources.is_some());
        assert_eq!(d.device_fits.len(), 2);
    }

    #[test]
    fn custom_worker_has_no_resource_estimate() {
        let d = AcceleratorBuilder::new("my-custom-kernel").build().unwrap();
        assert!(d.resources.is_none());
        assert!(d.device_fits.is_empty());
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        let err = AcceleratorBuilder::new("uts").tiles(0).build().unwrap_err();
        assert_eq!(err, FlowError::Config(ConfigError::NoTiles));
        let err = AcceleratorBuilder::new("uts")
            .cache_kb(3)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            FlowError::Config(ConfigError::BadCacheGeometry { bytes: 3 * 1024 }),
            "{err}"
        );
        assert_eq!(
            err.to_string(),
            "invalid configuration: cache size 3072 does not form a power-of-two number of sets"
        );
    }

    #[test]
    fn cache_sweep_produces_fig9_points() {
        let designs = sweep_cache_sizes("nw", &[4, 8, 16, 32]).unwrap();
        assert_eq!(designs.len(), 4);
        // Smaller caches use fewer BRAMs.
        let brams: Vec<u32> = designs
            .iter()
            .map(|d| d.resources.as_ref().unwrap().tile.bram18)
            .collect();
        assert!(brams.windows(2).all(|w| w[0] < w[1]));
        // And the simulator config actually gets the smaller cache.
        assert_eq!(designs[0].config.memory.accel_l1.size_bytes, 4 * 1024);
    }

    #[test]
    fn pe_sweep_matches_paper_geometry() {
        let designs = sweep_pe_counts("queens", ArchKind::Flex, &[1, 2, 4, 8, 16, 32]).unwrap();
        let pes: Vec<usize> = designs.iter().map(|d| d.config.num_pes()).collect();
        assert_eq!(pes, vec![1, 2, 4, 8, 16, 32]);
        assert_eq!(designs[5].config.tiles, 8, "32 PEs = 8 tiles x 4 PEs");
    }

    #[test]
    fn design_for_point_matches_the_builder() {
        let point = DesignPoint {
            arch: PointArch::Lite,
            tiles: 2,
            pes_per_tile: 4,
            cache_kb: 8,
            task_queue_entries: 256,
            pstore_entries: 1024,
            cluster: None,
        };
        let d = design_for_point("nw", &point).unwrap();
        assert_eq!(d.config.arch, ArchKind::Lite);
        assert_eq!(d.config.num_pes(), 8);
        assert_eq!(d.config.task_queue_entries, 256);
        assert_eq!(d.config.memory.accel_l1.size_bytes, 8 * 1024);
        assert!(d.resources.is_some());

        let err = design_for_point("nw", &DesignPoint::cpu(4)).unwrap_err();
        assert!(matches!(err, FlowError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn simulation_builder_targets_any_design_point() {
        use pxl_arch::EngineKind;
        let point = DesignPoint {
            arch: PointArch::Flex,
            tiles: 1,
            pes_per_tile: 2,
            cache_kb: 16,
            task_queue_entries: 64,
            pstore_entries: 512,
            cluster: None,
        };
        let engine = SimulationBuilder::from_point(&point, ExecProfile::scalar())
            .build()
            .unwrap();
        assert_eq!(engine.kind(), EngineKind::Flex);
        assert_eq!(engine.units(), 2);

        let cpu = SimulationBuilder::from_point(&DesignPoint::cpu(3), ExecProfile::scalar())
            .build()
            .unwrap();
        assert_eq!(cpu.kind(), EngineKind::Cpu);
        assert_eq!(cpu.units(), 3);

        // Infeasible points still fail with the typed constraint.
        let mut bad = point.clone();
        bad.cache_kb = 3;
        let err = SimulationBuilder::from_point(&bad, ExecProfile::scalar())
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            FlowError::Config(ConfigError::BadCacheGeometry { bytes: 3 * 1024 })
        );
    }

    #[test]
    fn spec_parsing_round_trips() {
        let d = AcceleratorBuilder::from_spec("worker=queens arch=lite tiles=2 pes=2 cache_kb=8")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(d.config.arch, ArchKind::Lite);
        assert_eq!(d.config.num_pes(), 4);
        assert_eq!(d.config.memory.accel_l1.size_bytes, 8 * 1024);
    }

    #[test]
    fn spec_rejects_malformed_input_with_structured_errors() {
        let err = AcceleratorBuilder::from_spec("tiles=4").unwrap_err();
        assert!(matches!(err, FlowError::InvalidConfig(_)), "{err}");

        let err = AcceleratorBuilder::from_spec("worker=uts tiles").unwrap_err();
        assert_eq!(
            err,
            FlowError::MalformedPair {
                token: "tiles".into()
            }
        );

        let err = AcceleratorBuilder::from_spec("worker=uts tiles=abc").unwrap_err();
        assert_eq!(
            err,
            FlowError::InvalidValue {
                key: "tiles".into(),
                value: "abc".into(),
                expected: "an unsigned integer",
            }
        );
        assert_eq!(err.to_string(), "'tiles=abc': expected an unsigned integer");

        let err = AcceleratorBuilder::from_spec("worker=uts arch=warp").unwrap_err();
        assert!(
            matches!(&err, FlowError::InvalidValue { key, value, .. }
                if key == "arch" && value == "warp"),
            "{err}"
        );

        let err = AcceleratorBuilder::from_spec("worker=uts speed=9").unwrap_err();
        assert_eq!(
            err,
            FlowError::UnknownKey {
                key: "speed".into(),
                value: "9".into()
            }
        );
        assert_eq!(err.to_string(), "unknown key in 'speed=9'");

        let err = AcceleratorBuilder::from_spec("worker=uts queue=1").unwrap_err();
        assert_eq!(
            err,
            FlowError::OutOfRange {
                key: "queue".into(),
                value: "1".into(),
                constraint: "must be at least 2",
            }
        );

        let err = AcceleratorBuilder::from_spec("worker=uts tiles=0").unwrap_err();
        assert!(matches!(&err, FlowError::OutOfRange { key, .. } if key == "tiles"));
    }

    #[test]
    fn simulation_builder_constructs_all_three_engines() {
        use pxl_arch::EngineKind;
        let design = AcceleratorBuilder::new("uts").tiles(1).build().unwrap();
        let flex = SimulationBuilder::from_design(&design, ExecProfile::scalar())
            .build()
            .unwrap();
        assert_eq!(flex.kind(), EngineKind::Flex);
        assert_eq!(flex.units(), 4);

        let lite = SimulationBuilder::from_config(
            pxl_arch::AccelConfig::lite(1, 2),
            ExecProfile::scalar(),
        )
        .build()
        .unwrap();
        assert_eq!(lite.kind(), EngineKind::Lite);

        let cpu = SimulationBuilder::cpu(2, ExecProfile::scalar())
            .build()
            .unwrap();
        assert_eq!(cpu.kind(), EngineKind::Cpu);
        assert_eq!(cpu.units(), 2);
    }

    #[test]
    fn simulation_builder_validates_before_constructing() {
        let err = SimulationBuilder::from_config(
            pxl_arch::AccelConfig::flex(0, 4),
            ExecProfile::scalar(),
        )
        .build()
        .unwrap_err();
        assert_eq!(err, FlowError::Config(ConfigError::NoTiles));

        let err = SimulationBuilder::cpu(0, ExecProfile::scalar())
            .build()
            .unwrap_err();
        assert!(matches!(err, FlowError::InvalidConfig(_)));
    }

    #[test]
    fn simulation_builder_threads_trace_capacity() {
        use pxl_arch::Workload;
        use pxl_model::{Continuation, Task, TaskContext, TaskTypeId, Worker};

        struct Doubler;
        impl Worker for Doubler {
            fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
                ctx.compute(1);
                ctx.send_arg(task.k, task.args[0] * 2);
            }
        }

        let mut engine = SimulationBuilder::from_config(
            pxl_arch::AccelConfig::flex(1, 2),
            ExecProfile::scalar(),
        )
        .trace(1024)
        .build()
        .unwrap();
        let mut worker = Doubler;
        let root = Task::new(TaskTypeId(0), Continuation::host(0), &[21]);
        let out = engine.run(Workload::dynamic(&mut worker, root)).unwrap();
        assert_eq!(out.result, 42);
        assert!(!out.trace.is_empty(), "tracing must be on");
    }

    #[test]
    fn lite_arch_flows_through() {
        let d = AcceleratorBuilder::new("stencil2d")
            .arch(ArchKind::Lite)
            .build()
            .unwrap();
        assert_eq!(d.config.arch, ArchKind::Lite);
        let flex = AcceleratorBuilder::new("stencil2d").build().unwrap();
        assert!(d.resources.as_ref().unwrap().tile.lut < flex.resources.as_ref().unwrap().tile.lut);
    }
}
