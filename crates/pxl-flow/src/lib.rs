//! The ParallelXL design methodology (Section IV of the paper).
//!
//! The paper's flow takes a C++ worker description and an architectural
//! template, elaborates the template with the designer's parameters
//! (architecture, tiles, PEs, queue and P-Store entries, cache size), and
//! emits accelerator RTL. In this reproduction the "RTL" is a validated
//! simulator configuration plus a resource estimate:
//!
//! ```text
//! Worker (Rust impl of pxl_model::Worker)   Architecture template (pxl-arch)
//!                \                               /
//!                 AcceleratorBuilder::build()
//!                          |
//!                 AcceleratorDesign { AccelConfig, resources, device fits }
//! ```
//!
//! [`AcceleratorBuilder`] is the single entry point a designer uses; "design
//! space exploration can be done easily by changing the parameters given to
//! the framework, without rewriting any code" (Section IV-C) — that is
//! [`sweep_cache_sizes`] and [`sweep_pe_counts`].
//!
//! # Examples
//!
//! ```
//! use pxl_flow::AcceleratorBuilder;
//!
//! let design = AcceleratorBuilder::new("queens")
//!     .tiles(4)
//!     .pes_per_tile(4)
//!     .cache_kb(16)
//!     .build()
//!     .unwrap();
//! assert_eq!(design.config.num_pes(), 16);
//! assert!(design.resources.is_some());
//! ```

use pxl_arch::{AccelConfig, ArchKind};
use pxl_cost::resources::{tile_resources, FpgaDevice, TileResources};

/// Errors produced while elaborating a design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowError {
    /// The architectural parameters are not realizable.
    InvalidConfig(String),
    /// The selected benchmark has no LiteArch variant.
    NoLiteVariant(String),
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            FlowError::NoLiteVariant(name) => {
                write!(f, "benchmark '{name}' has no LiteArch mapping")
            }
        }
    }
}

impl std::error::Error for FlowError {}

/// An elaborated accelerator design: simulator configuration, resource
/// estimate, and device-fitting results.
#[derive(Debug, Clone)]
pub struct AcceleratorDesign {
    /// The validated simulator configuration ("the RTL").
    pub config: AccelConfig,
    /// PE/tile resource estimate, when the worker is a known benchmark.
    pub resources: Option<TileResources>,
    /// `(device name, max tiles that fit)` for the paper's two devices.
    pub device_fits: Vec<(&'static str, u32)>,
}

/// Builder over the architectural template's parameters.
#[derive(Debug, Clone)]
pub struct AcceleratorBuilder {
    benchmark: String,
    arch: ArchKind,
    tiles: usize,
    pes_per_tile: usize,
    task_queue_entries: usize,
    pstore_entries: usize,
    cache_bytes: usize,
}

impl AcceleratorBuilder {
    /// Starts a design for the named worker (one of the ten benchmarks, or
    /// any other name for a custom worker without a resource estimate).
    pub fn new(benchmark: impl Into<String>) -> Self {
        AcceleratorBuilder {
            benchmark: benchmark.into(),
            arch: ArchKind::Flex,
            tiles: 4,
            pes_per_tile: 4,
            task_queue_entries: 1024,
            pstore_entries: 4096,
            cache_bytes: 32 * 1024,
        }
    }

    /// Selects FlexArch or LiteArch.
    pub fn arch(&mut self, arch: ArchKind) -> &mut Self {
        self.arch = arch;
        self
    }

    /// Number of tiles.
    pub fn tiles(&mut self, tiles: usize) -> &mut Self {
        self.tiles = tiles;
        self
    }

    /// PEs per tile.
    pub fn pes_per_tile(&mut self, pes: usize) -> &mut Self {
        self.pes_per_tile = pes;
        self
    }

    /// Per-PE task queue entries.
    pub fn task_queue_entries(&mut self, entries: usize) -> &mut Self {
        self.task_queue_entries = entries;
        self
    }

    /// Per-tile P-Store entries.
    pub fn pstore_entries(&mut self, entries: usize) -> &mut Self {
        self.pstore_entries = entries;
        self
    }

    /// Tile cache capacity in KiB.
    pub fn cache_kb(&mut self, kb: usize) -> &mut Self {
        self.cache_bytes = kb * 1024;
        self
    }

    /// Elaborates the design: validates the configuration, estimates
    /// resources, and checks device fitting.
    ///
    /// # Errors
    ///
    /// [`FlowError::InvalidConfig`] if the template parameters are not
    /// realizable.
    pub fn build(&self) -> Result<AcceleratorDesign, FlowError> {
        let mut config = match self.arch {
            ArchKind::Flex => AccelConfig::flex(self.tiles, self.pes_per_tile),
            ArchKind::Lite => AccelConfig::lite(self.tiles, self.pes_per_tile),
        };
        config.task_queue_entries = self.task_queue_entries;
        config.pstore_entries = self.pstore_entries;
        config.memory.accel_l1 = config.memory.accel_l1.clone().with_size(self.cache_bytes);
        config.validate().map_err(FlowError::InvalidConfig)?;
        // Cache geometry must also be realizable: an integral,
        // power-of-two number of sets.
        let set_bytes = config.memory.accel_l1.ways * config.memory.accel_l1.line_bytes;
        if !self.cache_bytes.is_multiple_of(set_bytes)
            || !(self.cache_bytes / set_bytes).is_power_of_two()
        {
            return Err(FlowError::InvalidConfig(format!(
                "cache size {} does not form a power-of-two number of sets",
                self.cache_bytes
            )));
        }
        let resources = tile_resources(
            &self.benchmark,
            self.arch == ArchKind::Flex,
            self.pes_per_tile as u32,
            self.cache_bytes,
        );
        let device_fits = match &resources {
            Some(r) => vec![
                (
                    FpgaDevice::artix_7a75t().name,
                    FpgaDevice::artix_7a75t().max_tiles(&r.tile),
                ),
                (
                    FpgaDevice::kintex_7k160t().name,
                    FpgaDevice::kintex_7k160t().max_tiles(&r.tile),
                ),
            ],
            None => Vec::new(),
        };
        Ok(AcceleratorDesign {
            config,
            resources,
            device_fits,
        })
    }
}

impl AcceleratorBuilder {
    /// Parses a textual design specification — the closest analogue of the
    /// parameter files the paper's framework feeds its template elaborator.
    ///
    /// Format: whitespace-separated `key=value` pairs. Keys: `worker`
    /// (benchmark/worker name, required first or via `worker=`), `arch`
    /// (`flex`|`lite`), `tiles`, `pes`, `queue`, `pstore`, `cache_kb`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pxl_flow::AcceleratorBuilder;
    ///
    /// let design = AcceleratorBuilder::from_spec(
    ///     "worker=uts arch=flex tiles=8 pes=4 cache_kb=16 queue=512 pstore=2048",
    /// )
    /// .unwrap()
    /// .build()
    /// .unwrap();
    /// assert_eq!(design.config.num_pes(), 32);
    /// assert_eq!(design.config.task_queue_entries, 512);
    /// ```
    ///
    /// # Errors
    ///
    /// [`FlowError::InvalidConfig`] on unknown keys, malformed values or a
    /// missing worker name.
    pub fn from_spec(spec: &str) -> Result<AcceleratorBuilder, FlowError> {
        let mut worker: Option<String> = None;
        let mut builder: Option<AcceleratorBuilder> = None;
        let mut pending: Vec<(String, String)> = Vec::new();
        for token in spec.split_whitespace() {
            let (key, value) = token.split_once('=').ok_or_else(|| {
                FlowError::InvalidConfig(format!("expected key=value, got '{token}'"))
            })?;
            if key == "worker" {
                worker = Some(value.to_owned());
            } else {
                pending.push((key.to_owned(), value.to_owned()));
            }
        }
        let worker = worker
            .ok_or_else(|| FlowError::InvalidConfig("missing worker=<name>".into()))?;
        let b = builder.get_or_insert_with(|| AcceleratorBuilder::new(worker));
        let parse = |key: &str, value: &str| -> Result<usize, FlowError> {
            value.parse().map_err(|_| {
                FlowError::InvalidConfig(format!("'{key}' needs an integer, got '{value}'"))
            })
        };
        for (key, value) in pending {
            match key.as_str() {
                "arch" => match value.as_str() {
                    "flex" => {
                        b.arch(ArchKind::Flex);
                    }
                    "lite" => {
                        b.arch(ArchKind::Lite);
                    }
                    other => {
                        return Err(FlowError::InvalidConfig(format!(
                            "arch must be flex or lite, got '{other}'"
                        )))
                    }
                },
                "tiles" => {
                    b.tiles(parse(&key, &value)?);
                }
                "pes" => {
                    b.pes_per_tile(parse(&key, &value)?);
                }
                "queue" => {
                    b.task_queue_entries(parse(&key, &value)?);
                }
                "pstore" => {
                    b.pstore_entries(parse(&key, &value)?);
                }
                "cache_kb" => {
                    b.cache_kb(parse(&key, &value)?);
                }
                other => {
                    return Err(FlowError::InvalidConfig(format!("unknown key '{other}'")))
                }
            }
        }
        Ok(builder.expect("builder initialized with worker"))
    }
}

/// Elaborates one design per cache size (the paper's Fig. 9 sweep:
/// 4 KB to 32 KB).
///
/// # Errors
///
/// Propagates the first elaboration failure.
pub fn sweep_cache_sizes(
    benchmark: &str,
    cache_kbs: &[usize],
) -> Result<Vec<AcceleratorDesign>, FlowError> {
    cache_kbs
        .iter()
        .map(|&kb| AcceleratorBuilder::new(benchmark).cache_kb(kb).build())
        .collect()
}

/// Elaborates one design per PE count, keeping 4 PEs per tile as in the
/// paper's scalability study (1-, 2-PE configs use a single partial tile).
///
/// # Errors
///
/// Propagates the first elaboration failure.
pub fn sweep_pe_counts(
    benchmark: &str,
    arch: ArchKind,
    pe_counts: &[usize],
) -> Result<Vec<AcceleratorDesign>, FlowError> {
    pe_counts
        .iter()
        .map(|&pes| {
            let (tiles, per_tile) = if pes <= 4 { (1, pes) } else { (pes / 4, 4) };
            AcceleratorBuilder::new(benchmark)
                .arch(arch)
                .tiles(tiles)
                .pes_per_tile(per_tile)
                .build()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_design_elaborates() {
        let d = AcceleratorBuilder::new("uts").build().unwrap();
        assert_eq!(d.config.arch, ArchKind::Flex);
        assert_eq!(d.config.num_pes(), 16);
        assert!(d.resources.is_some());
        assert_eq!(d.device_fits.len(), 2);
    }

    #[test]
    fn custom_worker_has_no_resource_estimate() {
        let d = AcceleratorBuilder::new("my-custom-kernel").build().unwrap();
        assert!(d.resources.is_none());
        assert!(d.device_fits.is_empty());
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        let err = AcceleratorBuilder::new("uts").tiles(0).build().unwrap_err();
        assert!(matches!(err, FlowError::InvalidConfig(_)));
        let err = AcceleratorBuilder::new("uts").cache_kb(3).build().unwrap_err();
        assert!(matches!(err, FlowError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn cache_sweep_produces_fig9_points() {
        let designs = sweep_cache_sizes("nw", &[4, 8, 16, 32]).unwrap();
        assert_eq!(designs.len(), 4);
        // Smaller caches use fewer BRAMs.
        let brams: Vec<u32> = designs
            .iter()
            .map(|d| d.resources.as_ref().unwrap().tile.bram18)
            .collect();
        assert!(brams.windows(2).all(|w| w[0] < w[1]));
        // And the simulator config actually gets the smaller cache.
        assert_eq!(designs[0].config.memory.accel_l1.size_bytes, 4 * 1024);
    }

    #[test]
    fn pe_sweep_matches_paper_geometry() {
        let designs =
            sweep_pe_counts("queens", ArchKind::Flex, &[1, 2, 4, 8, 16, 32]).unwrap();
        let pes: Vec<usize> = designs.iter().map(|d| d.config.num_pes()).collect();
        assert_eq!(pes, vec![1, 2, 4, 8, 16, 32]);
        assert_eq!(designs[5].config.tiles, 8, "32 PEs = 8 tiles x 4 PEs");
    }

    #[test]
    fn spec_parsing_round_trips() {
        let d = AcceleratorBuilder::from_spec("worker=queens arch=lite tiles=2 pes=2 cache_kb=8")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(d.config.arch, ArchKind::Lite);
        assert_eq!(d.config.num_pes(), 4);
        assert_eq!(d.config.memory.accel_l1.size_bytes, 8 * 1024);
    }

    #[test]
    fn spec_rejects_malformed_input() {
        for bad in [
            "tiles=4",                 // no worker
            "worker=uts tiles",        // not key=value
            "worker=uts tiles=abc",    // not an integer
            "worker=uts arch=warp",    // unknown arch
            "worker=uts speed=9",      // unknown key
        ] {
            assert!(
                AcceleratorBuilder::from_spec(bad).is_err(),
                "spec '{bad}' should be rejected"
            );
        }
    }

    #[test]
    fn lite_arch_flows_through() {
        let d = AcceleratorBuilder::new("stencil2d")
            .arch(ArchKind::Lite)
            .build()
            .unwrap();
        assert_eq!(d.config.arch, ArchKind::Lite);
        let flex = AcceleratorBuilder::new("stencil2d").build().unwrap();
        assert!(
            d.resources.as_ref().unwrap().tile.lut < flex.resources.as_ref().unwrap().tile.lut
        );
    }
}
