//! The canonical, serializable description of one simulation run.
//!
//! A [`RunSpec`] names everything a run needs — benchmark and input scale,
//! the architectural [`DesignPoint`], an optional execution-profile
//! override, trace capacity, and an optional fault plan — as plain data
//! with an exact JSON round trip. It is the one request type every driver
//! (`pxl-bench --bin all/dse/faults/profile`) and the `pxl-serve` job
//! server build runs from, and its [`RunSpec::canonical`] string is the
//! identity used for result-cache keys and request deduplication.
//!
//! # Examples
//!
//! ```
//! use pxl_dse::{DesignPoint, PointArch};
//! use pxl_flow::RunSpec;
//! use pxl_apps::Scale;
//!
//! let spec = RunSpec::new("uts", Scale::Tiny, DesignPoint::accel(PointArch::Flex, 2, 4));
//! let json = spec.to_json();
//! let back = RunSpec::from_json(&json).unwrap();
//! assert_eq!(back, spec);
//! assert_eq!(back.to_json(), json); // byte-exact round trip
//! assert_eq!(
//!     spec.canonical(),
//!     "bench=uts scale=tiny arch=flex tiles=2 pes=4 cache_kb=32 queue=1024 pstore=8192"
//! );
//! ```

use pxl_apps::Scale;
use pxl_arch::StealMode;
use pxl_dse::{ClusterPoint, DesignPoint, PointArch};
use pxl_model::ExecProfile;
use pxl_sim::json::JsonValue;
use pxl_sim::{fnv64, FaultPlan};

/// Why a [`RunSpec`] could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The text is not well-formed JSON.
    Json(String),
    /// A required field is absent.
    Missing(&'static str),
    /// A field is present but malformed.
    Invalid {
        /// The offending field.
        field: &'static str,
        /// What was wrong with it.
        message: String,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "run spec is not valid JSON: {e}"),
            SpecError::Missing(field) => write!(f, "run spec is missing field '{field}'"),
            SpecError::Invalid { field, message } => {
                write!(f, "run spec field '{field}': {message}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// When a run should checkpoint its simulation state.
///
/// The run pauses at every multiple of `every_cycles` engine-clock cycles
/// of simulated time and serializes an engine snapshot (see
/// `docs/checkpoint.md`). Checkpointing is pure observation: a run with a
/// checkpoint policy produces byte-identical results, metrics and traces
/// to the same run without one, which is why the policy is *excluded* from
/// [`RunSpec::canonical`] — the cache key identifies the simulated work,
/// not how durably it is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint interval in engine-clock cycles of simulated time
    /// (must be nonzero).
    pub every_cycles: u64,
}

impl CheckpointPolicy {
    /// A policy checkpointing every `every_cycles` simulated cycles.
    ///
    /// # Panics
    ///
    /// Panics if `every_cycles` is zero — "checkpoint never" is spelled by
    /// omitting the policy, not by a zero interval.
    pub fn every(every_cycles: u64) -> Self {
        assert!(every_cycles > 0, "checkpoint interval must be nonzero");
        CheckpointPolicy { every_cycles }
    }
}

/// When a run should sample in-run telemetry.
///
/// The engine snapshots its metric counters and live gauges at every
/// multiple of `every_cycles` engine-clock cycles of simulated time into a
/// windowed timeline (see `docs/metrics.md`). Like checkpointing, telemetry
/// is pure observation: a run with a telemetry policy produces
/// byte-identical results, metrics and traces to the same run without one,
/// which is why the policy is *excluded* from [`RunSpec::canonical`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryPolicy {
    /// Sampling epoch width in engine-clock cycles of simulated time
    /// (must be nonzero).
    pub every_cycles: u64,
}

impl TelemetryPolicy {
    /// A policy sampling every `every_cycles` simulated cycles.
    ///
    /// # Panics
    ///
    /// Panics if `every_cycles` is zero — "sample never" is spelled by
    /// omitting the policy, not by a zero epoch.
    pub fn every(every_cycles: u64) -> Self {
        assert!(every_cycles > 0, "telemetry epoch must be nonzero");
        TelemetryPolicy { every_cycles }
    }
}

/// A serializable simulation request: one benchmark run on one design
/// point. See the [module docs](self) for the role it plays.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Benchmark name (Table II, via `pxl_apps::by_name`).
    pub benchmark: String,
    /// Input scale.
    pub scale: Scale,
    /// The architectural point to run on (accelerator or CPU baseline).
    pub point: DesignPoint,
    /// Execution-profile override; `None` uses the benchmark's own profile.
    pub profile: Option<ExecProfile>,
    /// Trace buffer capacity per source (0 disables tracing).
    pub trace_capacity: usize,
    /// Deterministic fault plan to arm (accelerator points only).
    pub faults: Option<FaultPlan>,
    /// Periodic checkpointing of simulation state; `None` never pauses.
    /// Not part of the run's [`RunSpec::canonical`] identity.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Periodic in-run telemetry sampling; `None` records no timeline.
    /// Not part of the run's [`RunSpec::canonical`] identity.
    pub telemetry: Option<TelemetryPolicy>,
}

impl RunSpec {
    /// A spec with no tracing, no faults, and the benchmark's own profile.
    pub fn new(benchmark: impl Into<String>, scale: Scale, point: DesignPoint) -> Self {
        RunSpec {
            benchmark: benchmark.into(),
            scale,
            point,
            profile: None,
            trace_capacity: 0,
            faults: None,
            checkpoint: None,
            telemetry: None,
        }
    }

    /// Sets the trace buffer capacity.
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Arms a fault plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Overrides the execution profile.
    pub fn with_profile(mut self, profile: ExecProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Checkpoints simulation state every `every_cycles` simulated cycles.
    ///
    /// # Panics
    ///
    /// Panics if `every_cycles` is zero.
    pub fn with_checkpoint(mut self, every_cycles: u64) -> Self {
        self.checkpoint = Some(CheckpointPolicy::every(every_cycles));
        self
    }

    /// Samples in-run telemetry every `every_cycles` simulated cycles.
    ///
    /// # Panics
    ///
    /// Panics if `every_cycles` is zero.
    pub fn with_telemetry(mut self, every_cycles: u64) -> Self {
        self.telemetry = Some(TelemetryPolicy::every(every_cycles));
        self
    }

    /// The canonical one-line identity string: benchmark, scale and the
    /// point's spec, plus trace/profile/fault terms only when they differ
    /// from the defaults. Two specs are the same run if and only if their
    /// canonical strings match — this is the result-cache and dedup key.
    ///
    /// The [`CheckpointPolicy`] is deliberately *not* part of the key:
    /// checkpointing is observation, not simulation — a checkpointed run
    /// and an uninterrupted run of the same spec produce the same bytes,
    /// so they may share a cache entry.
    pub fn canonical(&self) -> String {
        let mut out = format!(
            "bench={} scale={} {}",
            self.benchmark,
            self.scale.label(),
            self.point.spec()
        );
        if self.trace_capacity > 0 {
            out.push_str(&format!(" trace={}", self.trace_capacity));
        }
        if let Some(p) = &self.profile {
            out.push_str(&format!(
                " profile={}:{}",
                p.accel_ops_per_cycle, p.cpu_ops_per_cycle
            ));
        }
        if let Some(plan) = &self.faults {
            // The plan's full JSON would bloat the key; its FNV-64 content
            // address identifies it exactly (same scheme as ResultCache).
            out.push_str(&format!(
                " faults=fnv:{:016x}",
                fnv64(plan.to_json().as_bytes())
            ));
        }
        out
    }

    /// The spec as a JSON value (fixed member order; optional members
    /// omitted when unset, so rendering is canonical).
    pub fn to_json_value(&self) -> JsonValue {
        let point = match self.point.arch {
            PointArch::Cpu => JsonValue::Object(vec![
                ("arch".to_owned(), JsonValue::Str("cpu".to_owned())),
                (
                    "cores".to_owned(),
                    JsonValue::num_u64(self.point.units() as u64),
                ),
            ]),
            arch => {
                let mut members = vec![
                    ("arch".to_owned(), JsonValue::Str(arch.label().to_owned())),
                    (
                        "tiles".to_owned(),
                        JsonValue::num_u64(self.point.tiles as u64),
                    ),
                    (
                        "pes_per_tile".to_owned(),
                        JsonValue::num_u64(self.point.pes_per_tile as u64),
                    ),
                    (
                        "cache_kb".to_owned(),
                        JsonValue::num_u64(self.point.cache_kb as u64),
                    ),
                    (
                        "task_queue_entries".to_owned(),
                        JsonValue::num_u64(self.point.task_queue_entries as u64),
                    ),
                    (
                        "pstore_entries".to_owned(),
                        JsonValue::num_u64(self.point.pstore_entries as u64),
                    ),
                ];
                // Optional member, omitted for single-chip points, so every
                // pre-cluster spec's JSON rendering is byte-unchanged.
                if let Some(c) = &self.point.cluster {
                    members.push((
                        "cluster".to_owned(),
                        JsonValue::Object(vec![
                            ("chips".to_owned(), JsonValue::num_u64(c.chips as u64)),
                            (
                                "link_latency_cycles".to_owned(),
                                JsonValue::num_u64(c.link_latency_cycles),
                            ),
                            (
                                "link_occupancy_cycles".to_owned(),
                                JsonValue::num_u64(c.link_occupancy_cycles),
                            ),
                            (
                                "stealing".to_owned(),
                                JsonValue::Str(match c.stealing {
                                    StealMode::Hierarchical { .. } => "hierarchical".to_owned(),
                                    StealMode::Flat => "flat".to_owned(),
                                }),
                            ),
                            (
                                "spill_threshold".to_owned(),
                                JsonValue::num_u64(u64::from(match c.stealing {
                                    StealMode::Hierarchical { spill_threshold } => spill_threshold,
                                    StealMode::Flat => 0,
                                })),
                            ),
                        ]),
                    ));
                }
                JsonValue::Object(members)
            }
        };
        let mut members = vec![
            (
                "benchmark".to_owned(),
                JsonValue::Str(self.benchmark.clone()),
            ),
            (
                "scale".to_owned(),
                JsonValue::Str(self.scale.label().to_owned()),
            ),
            ("point".to_owned(), point),
        ];
        if let Some(p) = &self.profile {
            members.push((
                "profile".to_owned(),
                JsonValue::Object(vec![
                    (
                        "accel_ops_per_cycle".to_owned(),
                        JsonValue::num_f64(p.accel_ops_per_cycle),
                    ),
                    (
                        "cpu_ops_per_cycle".to_owned(),
                        JsonValue::num_f64(p.cpu_ops_per_cycle),
                    ),
                ]),
            ));
        }
        if self.trace_capacity > 0 {
            members.push((
                "trace_capacity".to_owned(),
                JsonValue::num_u64(self.trace_capacity as u64),
            ));
        }
        if let Some(plan) = &self.faults {
            members.push(("faults".to_owned(), plan.to_json_value()));
        }
        if let Some(cp) = &self.checkpoint {
            members.push((
                "checkpoint".to_owned(),
                JsonValue::Object(vec![(
                    "every_cycles".to_owned(),
                    JsonValue::num_u64(cp.every_cycles),
                )]),
            ));
        }
        if let Some(tp) = &self.telemetry {
            members.push((
                "telemetry".to_owned(),
                JsonValue::Object(vec![(
                    "every_cycles".to_owned(),
                    JsonValue::num_u64(tp.every_cycles),
                )]),
            ));
        }
        JsonValue::Object(members)
    }

    /// The spec as one canonical JSON object.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Rebuilds a spec from [`RunSpec::to_json_value`] output.
    ///
    /// # Errors
    ///
    /// A typed [`SpecError`] naming the missing or malformed field.
    pub fn from_json_value(value: &JsonValue) -> Result<RunSpec, SpecError> {
        let benchmark = value
            .get("benchmark")
            .and_then(JsonValue::as_str)
            .ok_or(SpecError::Missing("benchmark"))?
            .to_owned();
        let scale_label = value
            .get("scale")
            .and_then(JsonValue::as_str)
            .ok_or(SpecError::Missing("scale"))?;
        let scale = Scale::from_label(scale_label).ok_or_else(|| SpecError::Invalid {
            field: "scale",
            message: format!("unknown scale {scale_label:?} (tiny|small|paper)"),
        })?;
        let point_value = value.get("point").ok_or(SpecError::Missing("point"))?;
        let point = parse_point(point_value)?;
        let profile = match value.get("profile") {
            None => None,
            Some(p) => {
                let get = |key: &'static str| {
                    p.get(key)
                        .and_then(JsonValue::as_f64)
                        .ok_or(SpecError::Missing(key))
                };
                let accel = get("accel_ops_per_cycle")?;
                let cpu = get("cpu_ops_per_cycle")?;
                if accel <= 0.0 || cpu <= 0.0 {
                    return Err(SpecError::Invalid {
                        field: "profile",
                        message: "ops-per-cycle rates must be positive".to_owned(),
                    });
                }
                Some(ExecProfile::new(accel, cpu))
            }
        };
        let trace_capacity = match value.get("trace_capacity") {
            None => 0,
            Some(t) => t.as_u64().ok_or(SpecError::Invalid {
                field: "trace_capacity",
                message: "expected an unsigned integer".to_owned(),
            })? as usize,
        };
        let faults = match value.get("faults") {
            None => None,
            Some(f) if f.is_null() => None,
            Some(f) => {
                Some(
                    FaultPlan::from_json_value(f).map_err(|message| SpecError::Invalid {
                        field: "faults",
                        message,
                    })?,
                )
            }
        };
        let checkpoint = match value.get("checkpoint") {
            None => None,
            Some(c) if c.is_null() => None,
            Some(c) => {
                let every_cycles = c.get("every_cycles").and_then(JsonValue::as_u64).ok_or(
                    SpecError::Invalid {
                        field: "checkpoint",
                        message: "expected {\"every_cycles\": <unsigned integer>}".to_owned(),
                    },
                )?;
                if every_cycles == 0 {
                    return Err(SpecError::Invalid {
                        field: "checkpoint",
                        message: "checkpoint interval must be nonzero \
                                  (omit the member to disable checkpointing)"
                            .to_owned(),
                    });
                }
                Some(CheckpointPolicy { every_cycles })
            }
        };
        let telemetry = match value.get("telemetry") {
            None => None,
            Some(t) if t.is_null() => None,
            Some(t) => {
                let every_cycles = t.get("every_cycles").and_then(JsonValue::as_u64).ok_or(
                    SpecError::Invalid {
                        field: "telemetry",
                        message: "expected {\"every_cycles\": <unsigned integer>}".to_owned(),
                    },
                )?;
                if every_cycles == 0 {
                    return Err(SpecError::Invalid {
                        field: "telemetry",
                        message: "telemetry epoch must be nonzero \
                                  (omit the member to disable sampling)"
                            .to_owned(),
                    });
                }
                Some(TelemetryPolicy { every_cycles })
            }
        };
        Ok(RunSpec {
            benchmark,
            scale,
            point,
            profile,
            trace_capacity,
            faults,
            checkpoint,
            telemetry,
        })
    }

    /// Parses [`RunSpec::to_json`] output.
    ///
    /// # Errors
    ///
    /// A typed [`SpecError`] naming the problem.
    pub fn from_json(text: &str) -> Result<RunSpec, SpecError> {
        let value = JsonValue::parse(text).map_err(|e| SpecError::Json(e.to_string()))?;
        RunSpec::from_json_value(&value)
    }
}

fn parse_point(value: &JsonValue) -> Result<DesignPoint, SpecError> {
    let arch_label = value
        .get("arch")
        .and_then(JsonValue::as_str)
        .ok_or(SpecError::Missing("point.arch"))?;
    let field = |key: &'static str| {
        value
            .get(key)
            .and_then(JsonValue::as_u64)
            .map(|n| n as usize)
            .ok_or(SpecError::Missing(key))
    };
    match arch_label {
        "cpu" => Ok(DesignPoint::cpu(field("cores")?)),
        "flex" | "lite" | "central" => {
            let arch = match arch_label {
                "flex" => PointArch::Flex,
                "lite" => PointArch::Lite,
                _ => PointArch::Central,
            };
            let cluster = match value.get("cluster") {
                None => None,
                Some(c) if c.is_null() => None,
                Some(c) => Some(parse_cluster(c)?),
            };
            Ok(DesignPoint {
                arch,
                tiles: field("tiles")?,
                pes_per_tile: field("pes_per_tile")?,
                cache_kb: field("cache_kb")?,
                task_queue_entries: field("task_queue_entries")?,
                pstore_entries: field("pstore_entries")?,
                cluster,
            })
        }
        other => Err(SpecError::Invalid {
            field: "point.arch",
            message: format!("unknown arch {other:?} (flex|lite|central|cpu)"),
        }),
    }
}

fn parse_cluster(value: &JsonValue) -> Result<ClusterPoint, SpecError> {
    let num = |key: &'static str| {
        value
            .get(key)
            .and_then(JsonValue::as_u64)
            .ok_or(SpecError::Missing(key))
    };
    let chips = num("chips")? as usize;
    if chips < 2 {
        return Err(SpecError::Invalid {
            field: "cluster",
            message: "a cluster needs at least 2 chips (omit the member for one chip)".to_owned(),
        });
    }
    let stealing = match value.get("stealing").and_then(JsonValue::as_str) {
        Some("flat") => StealMode::Flat,
        Some("hierarchical") => StealMode::Hierarchical {
            spill_threshold: u32::try_from(num("spill_threshold")?).map_err(|_| {
                SpecError::Invalid {
                    field: "spill_threshold",
                    message: "spill threshold overflows u32".to_owned(),
                }
            })?,
        },
        Some(other) => {
            return Err(SpecError::Invalid {
                field: "stealing",
                message: format!("unknown stealing mode {other:?} (hierarchical|flat)"),
            });
        }
        None => return Err(SpecError::Missing("stealing")),
    };
    Ok(ClusterPoint {
        chips,
        link_latency_cycles: num("link_latency_cycles")?,
        link_occupancy_cycles: num("link_occupancy_cycles")?,
        stealing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxl_sim::{NetClass, Time};

    fn full_spec() -> RunSpec {
        RunSpec::new(
            "uts",
            Scale::Small,
            DesignPoint::accel(PointArch::Flex, 2, 4),
        )
        .with_trace(1 << 18)
        .with_profile(ExecProfile::new(0.75, 1.25))
        .with_faults(
            FaultPlan::new(0xD1E)
                .kill_pe(3, Time::from_us(2))
                .drop_messages(NetClass::Arg, Time::ZERO, Time::MAX, 500, 6),
        )
        .with_checkpoint(250_000)
        .with_telemetry(50_000)
    }

    #[test]
    fn json_round_trip_is_exact() {
        for spec in [
            RunSpec::new("queens", Scale::Tiny, DesignPoint::cpu(4)),
            RunSpec::new(
                "nw",
                Scale::Paper,
                DesignPoint::accel(PointArch::Lite, 1, 4),
            ),
            full_spec(),
        ] {
            let json = spec.to_json();
            let back = RunSpec::from_json(&json).unwrap();
            assert_eq!(back, spec);
            assert_eq!(back.to_json(), json, "canonical rendering is stable");
        }
    }

    #[test]
    fn canonical_strings_identify_runs() {
        let base = RunSpec::new(
            "uts",
            Scale::Tiny,
            DesignPoint::accel(PointArch::Flex, 2, 4),
        );
        assert_eq!(
            base.canonical(),
            "bench=uts scale=tiny arch=flex tiles=2 pes=4 cache_kb=32 queue=1024 pstore=8192"
        );
        assert_eq!(
            RunSpec::new("uts", Scale::Tiny, DesignPoint::cpu(8)).canonical(),
            "bench=uts scale=tiny arch=cpu cores=8"
        );
        // Every knob that changes the run changes the key.
        let variants = [
            base.clone().with_trace(1024),
            base.clone().with_profile(ExecProfile::new(1.0, 2.0)),
            base.clone()
                .with_faults(FaultPlan::new(1).kill_pe(0, Time::from_us(1))),
            RunSpec::new("uts", Scale::Small, base.point.clone()),
        ];
        for v in &variants {
            assert_ne!(v.canonical(), base.canonical(), "{}", v.canonical());
        }
        // And different fault plans get different keys.
        let a = base
            .clone()
            .with_faults(FaultPlan::new(1).kill_pe(0, Time::from_us(1)));
        let b = base
            .clone()
            .with_faults(FaultPlan::new(2).kill_pe(0, Time::from_us(1)));
        assert_ne!(a.canonical(), b.canonical());
    }

    #[test]
    fn parse_errors_are_typed() {
        assert!(matches!(
            RunSpec::from_json("nope").unwrap_err(),
            SpecError::Json(_)
        ));
        assert_eq!(
            RunSpec::from_json("{}").unwrap_err(),
            SpecError::Missing("benchmark")
        );
        assert_eq!(
            RunSpec::from_json(r#"{"benchmark":"uts"}"#).unwrap_err(),
            SpecError::Missing("scale")
        );
        assert!(matches!(
            RunSpec::from_json(r#"{"benchmark":"uts","scale":"huge"}"#).unwrap_err(),
            SpecError::Invalid { field: "scale", .. }
        ));
        assert_eq!(
            RunSpec::from_json(r#"{"benchmark":"uts","scale":"tiny"}"#).unwrap_err(),
            SpecError::Missing("point")
        );
        assert!(matches!(
            RunSpec::from_json(r#"{"benchmark":"uts","scale":"tiny","point":{"arch":"warp"}}"#)
                .unwrap_err(),
            SpecError::Invalid {
                field: "point.arch",
                ..
            }
        ));
        assert_eq!(
            RunSpec::from_json(r#"{"benchmark":"uts","scale":"tiny","point":{"arch":"flex"}}"#)
                .unwrap_err(),
            SpecError::Missing("tiles")
        );
        let err = RunSpec::from_json(
            r#"{"benchmark":"uts","scale":"tiny","point":{"arch":"cpu","cores":2},"faults":{"seed":1}}"#,
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                SpecError::Invalid {
                    field: "faults",
                    ..
                }
            ),
            "{err}"
        );
        assert!(err.to_string().contains("faults"));
    }

    #[test]
    fn checkpoint_policy_round_trips_but_never_changes_the_key() {
        let base = RunSpec::new(
            "uts",
            Scale::Tiny,
            DesignPoint::accel(PointArch::Flex, 2, 4),
        );
        let ck = base.clone().with_checkpoint(100_000);
        // Serialization distinguishes them...
        assert_ne!(base.to_json(), ck.to_json());
        let back = RunSpec::from_json(&ck.to_json()).unwrap();
        assert_eq!(back.checkpoint, Some(CheckpointPolicy::every(100_000)));
        // ...but the cache identity does not: checkpointing is observation.
        assert_eq!(base.canonical(), ck.canonical());

        // A zero interval is rejected at parse time with a typed error.
        let zero = ck.to_json().replace("100000", "0");
        assert!(matches!(
            RunSpec::from_json(&zero).unwrap_err(),
            SpecError::Invalid {
                field: "checkpoint",
                ..
            }
        ));
    }

    #[test]
    fn telemetry_policy_round_trips_but_never_changes_the_key() {
        let base = RunSpec::new(
            "uts",
            Scale::Tiny,
            DesignPoint::accel(PointArch::Flex, 2, 4),
        );
        let tl = base.clone().with_telemetry(25_000);
        // Serialization distinguishes them...
        assert_ne!(base.to_json(), tl.to_json());
        let back = RunSpec::from_json(&tl.to_json()).unwrap();
        assert_eq!(back.telemetry, Some(TelemetryPolicy::every(25_000)));
        // ...but the cache identity does not: telemetry is observation.
        assert_eq!(base.canonical(), tl.canonical());

        // A zero epoch is rejected at parse time with a typed error.
        let zero = tl.to_json().replace("25000", "0");
        assert!(matches!(
            RunSpec::from_json(&zero).unwrap_err(),
            SpecError::Invalid {
                field: "telemetry",
                ..
            }
        ));
    }

    #[test]
    fn profile_floats_survive_exactly() {
        let spec = RunSpec::new("uts", Scale::Tiny, DesignPoint::cpu(2))
            .with_profile(ExecProfile::new(0.6000000000000001, 1.0 / 3.0));
        let back = RunSpec::from_json(&spec.to_json()).unwrap();
        let (a, b) = (back.profile.unwrap(), spec.profile.unwrap());
        assert_eq!(
            a.accel_ops_per_cycle.to_bits(),
            b.accel_ops_per_cycle.to_bits()
        );
        assert_eq!(a.cpu_ops_per_cycle.to_bits(), b.cpu_ops_per_cycle.to_bits());
    }
}
