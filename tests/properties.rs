//! Property-based tests (proptest) on the core data structures and model
//! invariants.

use proptest::prelude::*;

use parallelxl::arch::{PStore, TaskDeque};
use parallelxl::mem::{BandwidthMeter, Memory};
use parallelxl::model::{
    Continuation, ParallelFor, PendingTask, SerialExecutor, Task, TaskContext, TaskTypeId,
    Worker, MAX_ARGS,
};
use parallelxl::sim::Time;

proptest! {
    /// The work-stealing deque behaves exactly like a double-ended queue:
    /// owner ops at the tail, thief ops at the head.
    #[test]
    fn deque_matches_model(ops in prop::collection::vec(0u8..3, 1..200)) {
        let mut dut = TaskDeque::new(1024);
        let mut model: std::collections::VecDeque<u64> = Default::default();
        let mut next = 0u64;
        for op in ops {
            match op {
                0 => {
                    let t = Task::new(TaskTypeId(0), Continuation::host(0), &[next]);
                    prop_assert!(dut.push_tail(t, Time::ZERO).is_ok());
                    model.push_back(next);
                    next += 1;
                }
                1 => {
                    let got = dut.pop_tail(Time::ZERO).map(|t| t.args[0]);
                    prop_assert_eq!(got, model.pop_back());
                }
                _ => {
                    let got = dut.steal_head(Time::ZERO).map(|t| t.args[0]);
                    prop_assert_eq!(got, model.pop_front());
                }
            }
            prop_assert_eq!(dut.len(), model.len());
        }
    }

    /// Continuation encoding is a bijection over its domain.
    #[test]
    fn continuation_roundtrip(tile in 0u16..=u16::MAX, entry in 0u32..=0xFFFF_FFFF,
                              slot in 0u8..MAX_ARGS as u8, host_slot in 0u8..8) {
        let k = Continuation::pstore(tile, entry, slot);
        prop_assert_eq!(Continuation::decode(k.encode()), k);
        let h = Continuation::host(host_slot);
        prop_assert_eq!(Continuation::decode(h.encode()), h);
        prop_assert_ne!(h.encode(), k.encode());
    }

    /// A pending task becomes ready exactly when its last argument arrives,
    /// for any join count and any arrival order.
    #[test]
    fn pstore_join_counting(join in 1u8..=MAX_ARGS as u8, seed in any::<u64>()) {
        let mut ps = PStore::new(4);
        let entry = ps
            .alloc(PendingTask::new(TaskTypeId(1), Continuation::host(0), join))
            .unwrap();
        // Shuffle slot order deterministically from the seed.
        let mut slots: Vec<u8> = (0..join).collect();
        let mut s = seed | 1;
        for i in (1..slots.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            slots.swap(i, (s >> 33) as usize % (i + 1));
        }
        for (i, &slot) in slots.iter().enumerate() {
            let ready = ps.fill(entry, slot, 100 + slot as u64);
            if i + 1 == join as usize {
                let t = ready.expect("last argument completes the join");
                for &slot in &slots {
                    prop_assert_eq!(t.args[slot as usize], 100 + slot as u64);
                }
            } else {
                prop_assert!(ready.is_none());
            }
        }
        prop_assert_eq!(ps.occupancy(), 0);
    }

    /// Functional memory reads back exactly what was written, at any
    /// alignment and span (including page boundaries).
    #[test]
    fn memory_readback(addr in 0u64..100_000, data in prop::collection::vec(any::<u8>(), 1..300)) {
        let mut mem = Memory::new();
        mem.write_bytes(addr, &data);
        let mut back = vec![0u8; data.len()];
        mem.read_bytes(addr, &mut back);
        prop_assert_eq!(back, data);
    }

    /// parallel_for covers every index exactly once and reduces the exact
    /// count, for arbitrary ranges and grains.
    #[test]
    fn parallel_for_exact_coverage(n in 0u64..3000, grain in 1u64..200) {
        struct W {
            pf: ParallelFor,
        }
        impl Worker for W {
            fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
                let pf = self.pf;
                let handled = pf.step(task, ctx, |ctx, lo, hi| {
                    for i in lo..hi {
                        let a = 0x1000 + i;
                        let v = ctx.mem().read_u8(a);
                        ctx.mem().write_u8(a, v + 1);
                    }
                    hi - lo
                });
                assert!(handled);
            }
        }
        let pf = ParallelFor::new(TaskTypeId(0), TaskTypeId(1), grain);
        let mut exec = SerialExecutor::new();
        let total = exec
            .run(&mut W { pf }, pf.root_task(0, n, Continuation::host(0)))
            .unwrap();
        prop_assert_eq!(total, n);
        for i in 0..n {
            prop_assert_eq!(exec.memory().read_u8(0x1000 + i), 1);
        }
    }

    /// The bandwidth meter never starts service before the request, never
    /// loses committed work, and enforces the aggregate rate.
    #[test]
    fn bandwidth_meter_conservation(reqs in prop::collection::vec((0u64..1_000_000, 1u64..5_000), 1..100)) {
        let mut m = BandwidthMeter::new(10_000);
        let mut committed = 0u64;
        for &(at, occ) in &reqs {
            let start = m.acquire(Time::from_ps(at), occ);
            prop_assert!(start >= Time::from_ps(at), "service before request");
            committed += occ;
        }
        prop_assert_eq!(m.total_committed_ps(), committed);
    }

    /// Fork-join over an arbitrary expression tree computes the same sum as
    /// host arithmetic (joins neither lose nor duplicate values).
    #[test]
    fn fork_join_sums_match(values in prop::collection::vec(0u64..1000, 1..64)) {
        const LEAF: TaskTypeId = TaskTypeId(0);
        const SUM: TaskTypeId = TaskTypeId(1);
        struct W {
            values: Vec<u64>,
        }
        impl Worker for W {
            fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
                match task.ty {
                    LEAF => {
                        let (lo, hi) = (task.args[0], task.args[1]);
                        if hi - lo == 1 {
                            ctx.send_arg(task.k, self.values[lo as usize]);
                        } else {
                            let mid = lo + (hi - lo) / 2;
                            let kk = ctx.make_successor(SUM, task.k, 2);
                            ctx.spawn(Task::new(LEAF, kk.with_slot(1), &[mid, hi]));
                            ctx.spawn(Task::new(LEAF, kk.with_slot(0), &[lo, mid]));
                        }
                    }
                    _ => ctx.send_arg(task.k, task.args[0] + task.args[1]),
                }
            }
        }
        let want: u64 = values.iter().sum();
        let n = values.len() as u64;
        let mut exec = SerialExecutor::new();
        let got = exec
            .run(&mut W { values }, Task::new(LEAF, Continuation::host(0), &[0, n]))
            .unwrap();
        prop_assert_eq!(got, want);
    }
}

proptest! {
    /// MOESI invariants hold after any interleaving of reads, writes and
    /// atomics from multiple ports: one owner per line, M/E exclusive,
    /// inclusive L2.
    #[test]
    fn coherence_invariants_hold(ops in prop::collection::vec(
        (0usize..4, 0u64..64, 0u8..3), 1..400))
    {
        use parallelxl::mem::{AccessKind, MemorySystem, PortId};
        use parallelxl::sim::config::MemoryConfig;

        let cfg = MemoryConfig::micro2018();
        let mut sys = MemorySystem::new(vec![cfg.accel_l1.clone(); 4], &cfg);
        let mut t = [Time::ZERO; 4];
        let addrs: Vec<u64> = (0..64).map(|l| l * 64).collect();
        for (port, line, kind) in ops {
            let kind = match kind {
                0 => AccessKind::Read,
                1 => AccessKind::Write,
                _ => AccessKind::Amo,
            };
            t[port] = sys.access(PortId(port), line * 64, kind, t[port]);
            sys.check_coherence(&addrs).map_err(|e| {
                proptest::test_runner::TestCaseError::fail(e)
            })?;
        }
    }

    /// Every scheduling-policy ablation still produces golden-correct
    /// results: policies change timing, never functional behaviour.
    #[test]
    fn ablated_policies_stay_golden(order in 0u8..2, end in 0u8..2, victim in 0u8..2,
                                    greedy in any::<bool>()) {
        use parallelxl::arch::{AccelConfig, FlexEngine, LocalOrder, SchedPolicy, StealEnd, VictimSelect};
        use parallelxl::apps::{by_name, Scale};

        let bench = by_name("queens", Scale::Tiny).unwrap();
        let mut cfg = AccelConfig::flex(2, 2);
        // FIFO order needs breadth-first queue headroom.
        cfg.task_queue_entries = 1 << 16;
        cfg.policy = SchedPolicy {
            local_order: if order == 0 { LocalOrder::Lifo } else { LocalOrder::Fifo },
            steal_end: if end == 0 { StealEnd::Head } else { StealEnd::Tail },
            victim_select: if victim == 0 { VictimSelect::Lfsr } else { VictimSelect::RoundRobin },
            greedy_routing: greedy,
        };
        let mut engine = FlexEngine::new(cfg, bench.profile());
        let inst = bench.flex(engine.mem_mut());
        let mut worker = inst.worker;
        let out = engine.run(worker.as_mut(), inst.root).unwrap();
        prop_assert!(bench.check(engine.memory(), out.result).is_ok());
    }
}
