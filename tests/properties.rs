//! Property-based tests on the core data structures and model invariants,
//! driven by the vendored `pxl_sim::qcheck` harness (the workspace builds
//! fully offline, so it cannot pull in `proptest`).

use parallelxl::arch::{PStore, TaskDeque};
use parallelxl::mem::{BandwidthMeter, Memory};
use parallelxl::model::{
    Continuation, ParallelFor, PendingTask, SerialExecutor, Task, TaskContext, TaskTypeId, Worker,
    MAX_ARGS,
};
use parallelxl::sim::qcheck::{check, Gen};
use parallelxl::sim::{EventQueue, Time};

/// The work-stealing deque behaves exactly like a double-ended queue: owner
/// ops at the tail, thief ops at the head.
#[test]
fn deque_matches_model() {
    check(96, "deque matches VecDeque", |g: &mut Gen| {
        let mut dut = TaskDeque::new(1024);
        let mut model: std::collections::VecDeque<u64> = Default::default();
        let mut next = 0u64;
        for _ in 0..g.usize_in(1, 200) {
            match g.range(0, 3) {
                0 => {
                    let t = Task::new(TaskTypeId(0), Continuation::host(0), &[next]);
                    assert!(dut.push_tail(t, Time::ZERO).is_ok());
                    model.push_back(next);
                    next += 1;
                }
                1 => {
                    let got = dut.pop_tail(Time::ZERO).map(|t| t.args[0]);
                    assert_eq!(got, model.pop_back());
                }
                _ => {
                    let got = dut.steal_head(Time::ZERO).map(|t| t.args[0]);
                    assert_eq!(got, model.pop_front());
                }
            }
            assert_eq!(dut.len(), model.len());
        }
    });
}

/// The two-lane bucketed event queue pops in exactly the order of a plain
/// binary-heap reference — time order, FIFO at equal times — over random
/// push/pop interleavings that span both lanes (same-bucket ties, in-window
/// deltas, far-future horizons), including a snapshot/restore mid-stream:
/// `ordered()` + re-push into a fresh queue, exactly what checkpointing does.
#[test]
fn event_queue_matches_heap_reference() {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    // Near-lane window span (NUM_BUCKETS << BUCKET_SHIFT in pxl-sim's
    // event.rs); deltas beyond this overflow to the heap lane.
    const WINDOW_PS: u64 = 256 << 13;

    check(48, "event queue matches heap reference", |g: &mut Gen| {
        let mut dut: EventQueue<u64> = EventQueue::new();
        let mut model: BinaryHeap<Reverse<(Time, u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut payload = 0u64;
        let mut now = 0u64; // last popped time (ps): the sim-clock lower bound
        let mut last_when = 0u64;
        let ops = g.usize_in(50, 300);
        let restore_at = g.usize_in(0, ops);
        for op in 0..ops {
            if op == restore_at {
                // Snapshot as checkpointing does and rebuild: fresh seqs
                // assigned in `ordered()` order must preserve every
                // tie-break, so the restored queue pops identically.
                let snap: Vec<(Time, u64)> =
                    dut.ordered().into_iter().map(|(t, &p)| (t, p)).collect();
                let mut rebuilt = EventQueue::new();
                for &(t, p) in &snap {
                    rebuilt.push(t, p);
                }
                dut = rebuilt;
                seq = 0;
                let mut drained = Vec::new();
                while let Some(Reverse((t, _, p))) = model.pop() {
                    drained.push((t, p));
                }
                assert_eq!(snap, drained, "snapshot order diverged from model");
                for (t, p) in drained {
                    model.push(Reverse((t, seq, p)));
                    seq += 1;
                }
            }
            if g.ratio(3, 5) || dut.is_empty() {
                let when = match g.range(0, 8) {
                    0..=2 => now + g.range(0, 1 << 13),   // same/adjacent bucket
                    3..=4 => now + g.range(0, WINDOW_PS), // anywhere in window
                    5 => now + WINDOW_PS + g.range(0, 8 * WINDOW_PS), // far lane
                    _ => last_when,                       // exact tie: exercises FIFO order
                };
                last_when = when;
                dut.push(Time::from_ps(when), payload);
                model.push(Reverse((Time::from_ps(when), seq, payload)));
                seq += 1;
                payload += 1;
            } else {
                let (t, p) = dut.pop().expect("queue is non-empty");
                let Reverse((mt, _, mp)) = model.pop().expect("model is non-empty");
                assert_eq!((t, p), (mt, mp), "pop diverged from heap reference");
                now = t.as_ps();
            }
            assert_eq!(dut.len(), model.len());
            assert_eq!(dut.peek_time(), model.peek().map(|Reverse((t, _, _))| *t));
        }
        // Drain: the full residual order must match.
        while let Some((t, p)) = dut.pop() {
            let Reverse((mt, _, mp)) = model.pop().expect("model drains with dut");
            assert_eq!((t, p), (mt, mp));
        }
        assert!(model.is_empty());
    });
}

/// Continuation encoding is a bijection over its domain.
#[test]
fn continuation_roundtrip() {
    check(
        256,
        "continuation encode/decode roundtrip",
        |g: &mut Gen| {
            let tile = g.range(0, u16::MAX as u64 + 1) as u16;
            let entry = g.range(0, 1 << 32) as u32;
            let slot = g.range(0, MAX_ARGS as u64) as u8;
            let host_slot = g.range(0, 8) as u8;
            let k = Continuation::pstore(tile, entry, slot);
            assert_eq!(Continuation::decode(k.encode()), k);
            let h = Continuation::host(host_slot);
            assert_eq!(Continuation::decode(h.encode()), h);
            assert_ne!(h.encode(), k.encode());
        },
    );
}

/// A pending task becomes ready exactly when its last argument arrives, for
/// any join count and any arrival order.
#[test]
fn pstore_join_counting() {
    check(
        128,
        "pstore joins fire on the last argument",
        |g: &mut Gen| {
            let join = g.range(1, MAX_ARGS as u64 + 1) as u8;
            let mut ps = PStore::new(4);
            let entry = ps
                .alloc(PendingTask::new(TaskTypeId(1), Continuation::host(0), join))
                .unwrap()
                .unwrap();
            // Shuffle slot order from the generator.
            let mut slots: Vec<u8> = (0..join).collect();
            for i in (1..slots.len()).rev() {
                let j = g.usize_in(0, i + 1);
                slots.swap(i, j);
            }
            for (i, &slot) in slots.iter().enumerate() {
                let outcome = ps.fill(entry, slot, 100 + slot as u64).unwrap();
                if i + 1 == join as usize {
                    let t = outcome.ready.expect("last argument completes the join");
                    for &slot in &slots {
                        assert_eq!(t.args[slot as usize], 100 + slot as u64);
                    }
                } else {
                    assert!(outcome.ready.is_none());
                }
            }
            assert_eq!(ps.occupancy(), 0);
        },
    );
}

/// Functional memory reads back exactly what was written, at any alignment
/// and span (including page boundaries).
#[test]
fn memory_readback() {
    check(128, "memory readback", |g: &mut Gen| {
        let addr = g.range(0, 100_000);
        let len = g.usize_in(1, 300);
        let data: Vec<u8> = (0..len).map(|_| g.range(0, 256) as u8).collect();
        let mut mem = Memory::new();
        mem.write_bytes(addr, &data);
        let mut back = vec![0u8; data.len()];
        mem.read_bytes(addr, &mut back);
        assert_eq!(back, data);
    });
}

/// parallel_for covers every index exactly once and reduces the exact
/// count, for arbitrary ranges and grains.
#[test]
fn parallel_for_exact_coverage() {
    check(48, "parallel_for exact coverage", |g: &mut Gen| {
        let n = g.range(0, 3000);
        let grain = g.range(1, 200);
        struct W {
            pf: ParallelFor,
        }
        impl Worker for W {
            fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
                let pf = self.pf;
                let handled = pf.step(task, ctx, |ctx, lo, hi| {
                    for i in lo..hi {
                        let a = 0x1000 + i;
                        let v = ctx.mem().read_u8(a);
                        ctx.mem().write_u8(a, v + 1);
                    }
                    hi - lo
                });
                assert!(handled);
            }
        }
        let pf = ParallelFor::new(TaskTypeId(0), TaskTypeId(1), grain);
        let mut exec = SerialExecutor::new();
        let total = exec
            .run(&mut W { pf }, pf.root_task(0, n, Continuation::host(0)))
            .unwrap();
        assert_eq!(total, n);
        for i in 0..n {
            assert_eq!(exec.memory().read_u8(0x1000 + i), 1);
        }
    });
}

/// The bandwidth meter never starts service before the request and never
/// loses committed work.
#[test]
fn bandwidth_meter_conservation() {
    check(
        128,
        "bandwidth meter conserves committed work",
        |g: &mut Gen| {
            let mut m = BandwidthMeter::new(10_000);
            let mut committed = 0u64;
            for _ in 0..g.usize_in(1, 100) {
                let at = g.range(0, 1_000_000);
                let occ = g.range(1, 5_000);
                let start = m.acquire(Time::from_ps(at), occ);
                assert!(start >= Time::from_ps(at), "service before request");
                committed += occ;
            }
            assert_eq!(m.total_committed_ps(), committed);
        },
    );
}

/// Fork-join over an arbitrary expression tree computes the same sum as
/// host arithmetic (joins neither lose nor duplicate values).
#[test]
fn fork_join_sums_match() {
    check(96, "fork-join sums match host arithmetic", |g: &mut Gen| {
        const LEAF: TaskTypeId = TaskTypeId(0);
        const SUM: TaskTypeId = TaskTypeId(1);
        struct W {
            values: Vec<u64>,
        }
        impl Worker for W {
            fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
                match task.ty {
                    LEAF => {
                        let (lo, hi) = (task.args[0], task.args[1]);
                        if hi - lo == 1 {
                            ctx.send_arg(task.k, self.values[lo as usize]);
                        } else {
                            let mid = lo + (hi - lo) / 2;
                            let kk = ctx.make_successor(SUM, task.k, 2);
                            ctx.spawn(Task::new(LEAF, kk.with_slot(1), &[mid, hi]));
                            ctx.spawn(Task::new(LEAF, kk.with_slot(0), &[lo, mid]));
                        }
                    }
                    _ => ctx.send_arg(task.k, task.args[0] + task.args[1]),
                }
            }
        }
        let len = g.usize_in(1, 64);
        let values: Vec<u64> = (0..len).map(|_| g.range(0, 1000)).collect();
        let want: u64 = values.iter().sum();
        let n = values.len() as u64;
        let mut exec = SerialExecutor::new();
        let got = exec
            .run(
                &mut W { values },
                Task::new(LEAF, Continuation::host(0), &[0, n]),
            )
            .unwrap();
        assert_eq!(got, want);
    });
}

/// MOESI invariants hold after any interleaving of reads, writes and
/// atomics from multiple ports: one owner per line, M/E exclusive,
/// inclusive L2.
#[test]
fn coherence_invariants_hold() {
    use parallelxl::mem::{AccessKind, MemorySystem, PortId};
    use parallelxl::sim::config::MemoryConfig;

    check(
        32,
        "MOESI invariants hold under random traffic",
        |g: &mut Gen| {
            let cfg = MemoryConfig::micro2018();
            let mut sys = MemorySystem::new(vec![cfg.accel_l1.clone(); 4], &cfg);
            let mut t = [Time::ZERO; 4];
            let addrs: Vec<u64> = (0..64).map(|l| l * 64).collect();
            for _ in 0..g.usize_in(1, 400) {
                let port = g.usize_in(0, 4);
                let line = g.range(0, 64);
                let kind = match g.range(0, 3) {
                    0 => AccessKind::Read,
                    1 => AccessKind::Write,
                    _ => AccessKind::Amo,
                };
                t[port] = sys.access(PortId(port), line * 64, kind, t[port]);
                if let Err(e) = sys.check_coherence(&addrs) {
                    panic!("coherence violated: {e}");
                }
            }
        },
    );
}

/// Every scheduling-policy ablation still produces golden-correct results:
/// policies change timing, never functional behaviour.
#[test]
fn ablated_policies_stay_golden() {
    use parallelxl::apps::{by_name, Scale};
    use parallelxl::arch::{
        AccelConfig, FlexEngine, LocalOrder, SchedPolicy, StealEnd, VictimSelect,
    };

    check(16, "ablated policies stay golden", |g: &mut Gen| {
        let bench = by_name("queens", Scale::Tiny).unwrap();
        let mut cfg = AccelConfig::flex(2, 2);
        // FIFO order needs breadth-first queue headroom.
        cfg.task_queue_entries = 1 << 16;
        cfg.policy = SchedPolicy {
            local_order: *g.pick(&[LocalOrder::Lifo, LocalOrder::Fifo]),
            steal_end: *g.pick(&[StealEnd::Head, StealEnd::Tail]),
            victim_select: *g.pick(&[VictimSelect::Lfsr, VictimSelect::RoundRobin]),
            greedy_routing: g.bool(),
        };
        let mut engine = FlexEngine::new(cfg, bench.profile());
        let inst = bench.flex(engine.mem_mut());
        let mut worker = inst.worker;
        let out = engine.run(worker.as_mut(), inst.root).unwrap();
        assert!(bench.check(engine.memory(), out.result).is_ok());
    });
}
