//! The unified engine API is a pure refactor: driving an engine through
//! [`SimulationBuilder`] + the [`Engine`] trait produces bit-identical
//! results and cycle counts to calling the concrete engines' inherent run
//! methods, for every benchmark. Tracing is deterministic: two runs of the
//! same configuration serialize to byte-identical JSONL.

use parallelxl::apps::{suite, Scale};
use parallelxl::arch::AccelConfig;
use parallelxl::cpu::CpuEngine;
use parallelxl::{FlexEngine, LiteEngine, SimulationBuilder, Workload};

/// All ten benchmarks: the old inherent FlexArch path and the new
/// trait-object path agree on results and cycle counts at 4 PEs.
#[test]
fn flex_trait_path_matches_inherent_path() {
    for bench in suite(Scale::Tiny) {
        let name = bench.meta().name;

        // Old path: concrete engine, inherent run.
        let mut old = FlexEngine::new(AccelConfig::flex(1, 4), bench.profile());
        let inst = bench.flex(old.mem_mut());
        let mut worker = inst.worker;
        let old_out = old.run(worker.as_mut(), inst.root).expect("inherent run");
        bench
            .check(old.memory(), old_out.result)
            .expect("old path golden");

        // New path: SimulationBuilder + Engine trait object.
        let mut new = SimulationBuilder::from_config(AccelConfig::flex(1, 4), bench.profile())
            .build()
            .expect("valid config");
        let inst = bench.flex(new.mem_mut());
        let mut worker = inst.worker;
        let new_out = new
            .run(Workload::dynamic(worker.as_mut(), inst.root))
            .expect("trait run");
        bench
            .check(new.memory(), new_out.result)
            .expect("new path golden");

        assert_eq!(old_out.result, new_out.result, "{name}: results diverge");
        assert_eq!(
            old_out.elapsed, new_out.elapsed,
            "{name}: cycle counts diverge"
        );
        assert_eq!(
            old_out.metrics, new_out.metrics,
            "{name}: metrics diverge between paths"
        );
    }
}

/// Same equivalence for the CPU baseline at 4 cores.
#[test]
fn cpu_trait_path_matches_inherent_path() {
    for bench in suite(Scale::Tiny) {
        let name = bench.meta().name;

        let mut old = CpuEngine::new(4, bench.profile());
        let inst = bench.flex(old.mem_mut());
        let mut worker = inst.worker;
        let old_out = old.run(worker.as_mut(), inst.root).expect("inherent run");
        bench
            .check(old.memory(), old_out.result)
            .expect("old path golden");

        let mut new = SimulationBuilder::cpu(4, bench.profile())
            .build()
            .expect("valid config");
        let inst = bench.flex(new.mem_mut());
        let mut worker = inst.worker;
        let new_out = new
            .run(Workload::dynamic(worker.as_mut(), inst.root))
            .expect("trait run");

        assert_eq!(old_out.result, new_out.result, "{name}: results diverge");
        assert_eq!(
            old_out.elapsed, new_out.elapsed,
            "{name}: cycle counts diverge"
        );
        assert_eq!(
            old_out.metrics, new_out.metrics,
            "{name}: metrics diverge between paths"
        );
    }
}

/// Same equivalence for every benchmark that has a LiteArch mapping.
#[test]
fn lite_trait_path_matches_inherent_path() {
    for bench in suite(Scale::Tiny) {
        let name = bench.meta().name;

        let mut old = LiteEngine::new(AccelConfig::lite(1, 4), bench.profile());
        let Some(inst) = bench.lite(old.mem_mut()) else {
            continue;
        };
        let mut worker = inst.worker;
        let mut driver = inst.driver;
        let old_out = old
            .run(worker.as_mut(), driver.as_mut())
            .expect("inherent run");
        bench
            .check(old.memory(), old_out.result)
            .expect("old path golden");

        let mut new = SimulationBuilder::from_config(AccelConfig::lite(1, 4), bench.profile())
            .build()
            .expect("valid config");
        let inst = bench.lite(new.mem_mut()).expect("lite variant");
        let mut worker = inst.worker;
        let mut driver = inst.driver;
        let new_out = new
            .run(Workload::rounds(worker.as_mut(), driver.as_mut()))
            .expect("trait run");

        assert_eq!(old_out.result, new_out.result, "{name}: results diverge");
        assert_eq!(
            old_out.elapsed, new_out.elapsed,
            "{name}: cycle counts diverge"
        );
    }
}

/// Two traced runs of the same seed/configuration serialize to
/// byte-identical JSONL — the trace is deterministic, ordered, and stable.
#[test]
fn same_seed_traces_are_byte_identical() {
    let run_traced = |bench_name: &str| {
        let bench = parallelxl::apps::by_name(bench_name, Scale::Tiny).expect("known benchmark");
        let mut engine = SimulationBuilder::from_config(AccelConfig::flex(1, 4), bench.profile())
            .trace(1 << 16)
            .build()
            .expect("valid config");
        let inst = bench.flex(engine.mem_mut());
        let mut worker = inst.worker;
        let out = engine
            .run(Workload::dynamic(worker.as_mut(), inst.root))
            .expect("traced run");
        assert!(!out.trace.is_empty(), "trace captured events");
        out.trace.to_jsonl()
    };

    for name in ["queens", "uts", "spmvcrs"] {
        let first = run_traced(name);
        let second = run_traced(name);
        assert_eq!(
            first, second,
            "{name}: traces diverge across same-seed runs"
        );
        assert!(first
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
    }
}
