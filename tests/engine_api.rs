//! The unified engine API is a pure refactor: driving an engine through
//! [`SimulationBuilder`] + the [`Engine`] trait produces bit-identical
//! results and cycle counts to calling the concrete engines' inherent run
//! methods, for every benchmark. Tracing is deterministic: two runs of the
//! same configuration serialize to byte-identical JSONL.

use parallelxl::apps::{suite, Scale};
use parallelxl::arch::AccelConfig;
use parallelxl::cpu::CpuEngine;
use parallelxl::sim::qcheck::{check, Gen};
use parallelxl::{FaultPlan, FlexEngine, LiteEngine, NetClass, SimulationBuilder, Time, Workload};

/// All ten benchmarks: the old inherent FlexArch path and the new
/// trait-object path agree on results and cycle counts at 4 PEs.
#[test]
fn flex_trait_path_matches_inherent_path() {
    for bench in suite(Scale::Tiny) {
        let name = bench.meta().name;

        // Old path: concrete engine, inherent run.
        let mut old = FlexEngine::new(AccelConfig::flex(1, 4), bench.profile());
        let inst = bench.flex(old.mem_mut());
        let mut worker = inst.worker;
        let old_out = old.run(worker.as_mut(), inst.root).expect("inherent run");
        bench
            .check(old.memory(), old_out.result)
            .expect("old path golden");

        // New path: SimulationBuilder + Engine trait object.
        let mut new = SimulationBuilder::from_config(AccelConfig::flex(1, 4), bench.profile())
            .build()
            .expect("valid config");
        let inst = bench.flex(new.mem_mut());
        let mut worker = inst.worker;
        let new_out = new
            .run(Workload::dynamic(worker.as_mut(), inst.root))
            .expect("trait run");
        bench
            .check(new.memory(), new_out.result)
            .expect("new path golden");

        assert_eq!(old_out.result, new_out.result, "{name}: results diverge");
        assert_eq!(
            old_out.elapsed, new_out.elapsed,
            "{name}: cycle counts diverge"
        );
        assert_eq!(
            old_out.metrics, new_out.metrics,
            "{name}: metrics diverge between paths"
        );
    }
}

/// Same equivalence for the CPU baseline at 4 cores.
#[test]
fn cpu_trait_path_matches_inherent_path() {
    for bench in suite(Scale::Tiny) {
        let name = bench.meta().name;

        let mut old = CpuEngine::new(4, bench.profile());
        let inst = bench.flex(old.mem_mut());
        let mut worker = inst.worker;
        let old_out = old.run(worker.as_mut(), inst.root).expect("inherent run");
        bench
            .check(old.memory(), old_out.result)
            .expect("old path golden");

        let mut new = SimulationBuilder::cpu(4, bench.profile())
            .build()
            .expect("valid config");
        let inst = bench.flex(new.mem_mut());
        let mut worker = inst.worker;
        let new_out = new
            .run(Workload::dynamic(worker.as_mut(), inst.root))
            .expect("trait run");

        assert_eq!(old_out.result, new_out.result, "{name}: results diverge");
        assert_eq!(
            old_out.elapsed, new_out.elapsed,
            "{name}: cycle counts diverge"
        );
        assert_eq!(
            old_out.metrics, new_out.metrics,
            "{name}: metrics diverge between paths"
        );
    }
}

/// Same equivalence for every benchmark that has a LiteArch mapping.
#[test]
fn lite_trait_path_matches_inherent_path() {
    for bench in suite(Scale::Tiny) {
        let name = bench.meta().name;

        let mut old = LiteEngine::new(AccelConfig::lite(1, 4), bench.profile());
        let Some(inst) = bench.lite(old.mem_mut()) else {
            continue;
        };
        let mut worker = inst.worker;
        let mut driver = inst.driver;
        let old_out = old
            .run(worker.as_mut(), driver.as_mut())
            .expect("inherent run");
        bench
            .check(old.memory(), old_out.result)
            .expect("old path golden");

        let mut new = SimulationBuilder::from_config(AccelConfig::lite(1, 4), bench.profile())
            .build()
            .expect("valid config");
        let inst = bench.lite(new.mem_mut()).expect("lite variant");
        let mut worker = inst.worker;
        let mut driver = inst.driver;
        let new_out = new
            .run(Workload::rounds(worker.as_mut(), driver.as_mut()))
            .expect("trait run");

        assert_eq!(old_out.result, new_out.result, "{name}: results diverge");
        assert_eq!(
            old_out.elapsed, new_out.elapsed,
            "{name}: cycle counts diverge"
        );
    }
}

/// Two traced runs of the same seed/configuration serialize to
/// byte-identical JSONL — the trace is deterministic, ordered, and stable.
#[test]
fn same_seed_traces_are_byte_identical() {
    let run_traced = |bench_name: &str| {
        let bench = parallelxl::apps::by_name(bench_name, Scale::Tiny).expect("known benchmark");
        let mut engine = SimulationBuilder::from_config(AccelConfig::flex(1, 4), bench.profile())
            .trace(1 << 16)
            .build()
            .expect("valid config");
        let inst = bench.flex(engine.mem_mut());
        let mut worker = inst.worker;
        let out = engine
            .run(Workload::dynamic(worker.as_mut(), inst.root))
            .expect("traced run");
        assert!(!out.trace.is_empty(), "trace captured events");
        out.trace.to_jsonl()
    };

    for name in ["queens", "uts", "spmvcrs"] {
        let first = run_traced(name);
        let second = run_traced(name);
        assert_eq!(
            first, second,
            "{name}: traces diverge across same-seed runs"
        );
        assert!(first
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
    }
}

/// Any seeded fault plan replays byte-identically: two traced runs of the
/// same `(plan, workload)` pair serialize to the same JSONL and produce the
/// same result, elapsed time, and metrics — the whole point of seeding the
/// fault scheduler.
#[test]
fn any_seeded_fault_plan_replays_byte_identically() {
    check(10, "fault plans replay byte-identically", |g: &mut Gen| {
        // Bounded random plan against flex(2, 4): kill/stall a minority of
        // the 8 PEs and keep drop budgets below the retry limit so every
        // generated plan is survivable.
        let mut plan = FaultPlan::new(g.range(0, u64::MAX));
        // A single message is retried at most MAX_SEND_RETRIES (8) times, so
        // the drop budget across all specs stays at 8 to guarantee delivery.
        let mut drops_left = 8u64;
        for _ in 0..g.usize_in(1, 5) {
            plan = match g.range(0, 5) {
                0 => plan.kill_pe(g.usize_in(0, 8), Time::from_us(g.range(0, 20))),
                1 => plan.stall_pe(
                    g.usize_in(0, 8),
                    Time::from_us(g.range(0, 20)),
                    g.range(1, 2_000),
                ),
                2 if drops_left > 0 => {
                    let budget = g.range(1, drops_left + 1);
                    drops_left -= budget;
                    plan.drop_messages(
                        *g.pick(&[NetClass::Arg, NetClass::Task]),
                        Time::ZERO,
                        Time::MAX,
                        g.range(1, 1_001) as u16,
                        budget as u32,
                    )
                }
                2 | 3 => plan.duplicate_messages(
                    *g.pick(&[NetClass::Arg, NetClass::Task]),
                    Time::ZERO,
                    Time::MAX,
                    g.range(1, 1_001) as u16,
                    g.range(1, 9) as u32,
                ),
                _ => plan.corrupt_pstore(
                    g.usize_in(0, 2),
                    Time::from_us(g.range(0, 20)),
                    g.range(1, u64::MAX),
                ),
            };
        }
        let bench_name = *g.pick(&["queens", "uts"]);

        let run_traced = || {
            let bench = parallelxl::apps::by_name(bench_name, Scale::Tiny).expect("known");
            let mut engine =
                SimulationBuilder::from_config(AccelConfig::flex(2, 4), bench.profile())
                    .with_faults(plan.clone())
                    .trace(1 << 16)
                    .build()
                    .expect("valid faulted config");
            let inst = bench.flex(engine.mem_mut());
            let mut worker = inst.worker;
            let out = engine
                .run(Workload::dynamic(worker.as_mut(), inst.root))
                .expect("bounded plans are survivable");
            bench
                .check(engine.memory(), out.result)
                .expect("faulted run stays golden");
            (out.trace.to_jsonl(), out.result, out.elapsed, out.metrics)
        };

        let (trace_a, result_a, elapsed_a, metrics_a) = run_traced();
        let (trace_b, result_b, elapsed_b, metrics_b) = run_traced();
        assert_eq!(trace_a, trace_b, "{bench_name}: fault replay diverged");
        assert_eq!(result_a, result_b);
        assert_eq!(elapsed_a, elapsed_b);
        assert_eq!(metrics_a, metrics_b);
        assert_eq!(
            metrics_a.get("fault.recovered"),
            metrics_a.get("fault.injected"),
            "{bench_name}: recovery accounting must balance"
        );
    });
}
