//! Checkpoint/restore determinism gate: pausing a simulation at *any*
//! cycle boundary, serializing the engine through the versioned snapshot
//! envelope, and resuming in a fresh session must be invisible — the
//! restored run's results, metrics, trace and telemetry timeline are
//! byte-identical to an uninterrupted run of the same spec. Driven by the
//! vendored `pxl_sim::qcheck` harness over random benchmarks, scales,
//! engines, fault plans, telemetry epochs and checkpoint epochs.

use parallelxl::apps::Scale;
use parallelxl::sim::qcheck::{check, Gen};
use parallelxl::{
    execute, ClusterPoint, DesignPoint, FaultPlan, PointArch, RunSpec, SessionStatus, SimSession,
    Snapshot, SnapshotError, Time, SNAPSHOT_VERSION,
};

/// A random design point: any of the engines at small shapes, including
/// multi-chip clusters (hierarchical and flat stealing) whose snapshots
/// must carry the inter-chip link's in-flight serialization state.
fn random_point(g: &mut Gen) -> DesignPoint {
    match g.range(0, 5) {
        0 => DesignPoint::accel(PointArch::Flex, g.usize_in(1, 2), g.usize_in(2, 4)),
        1 => DesignPoint::accel(PointArch::Central, 1, g.usize_in(2, 4)),
        2 => DesignPoint::accel(PointArch::Lite, 1, g.usize_in(2, 4)),
        3 => {
            // A 2-chip cluster: chips must divide tiles, so 2 or 4 tiles.
            let tiles = 2 * g.usize_in(1, 2);
            let mut cluster = ClusterPoint::new(2).with_link(g.range(4, 64), g.range(1, 16));
            if g.bool() {
                cluster = cluster.flat();
            }
            DesignPoint::accel(PointArch::Flex, tiles, g.usize_in(2, 4)).clustered(cluster)
        }
        _ => DesignPoint::cpu(g.usize_in(1, 4)),
    }
}

/// A random fault plan valid for `point` (accelerator engines only —
/// seeded, so the plan is part of the deterministic run identity).
fn random_faults(g: &mut Gen, point: &DesignPoint) -> Option<FaultPlan> {
    let accel = point.accel_config()?;
    if !matches!(point.arch, PointArch::Flex | PointArch::Central) || g.bool() {
        return None;
    }
    let pes = accel.tiles * accel.pes_per_tile;
    let pe = g.usize_in(0, pes - 1);
    let at = Time::from_ns(g.range(100, 2_000));
    let plan = FaultPlan::new(g.u64());
    Some(if g.bool() {
        plan.kill_pe(pe, at)
    } else {
        plan.stall_pe(pe, at, g.range(10, 500))
    })
}

#[test]
fn any_checkpoint_epoch_restores_byte_identically() {
    check(10, "pause/snapshot/restore is invisible", |g: &mut Gen| {
        let bench = *g.pick(&["uts", "queens", "nw"]);
        let scale = if g.ratio(1, 8) {
            Scale::Small
        } else {
            Scale::Tiny
        };
        let point = random_point(g);
        let mut spec = RunSpec::new(bench, scale, point.clone()).with_trace(1 << 10);
        if let Some(plan) = random_faults(g, &point) {
            spec = spec.with_faults(plan);
        }
        // Half the runs also sample telemetry: the sampler state rides in
        // the snapshot, so a restored run's timeline must match too.
        if g.bool() {
            spec = spec.with_telemetry(g.range(100, 5_000));
        }

        // The uninterrupted run is the reference; a bench without a
        // variant for this engine is a skip, not a failure.
        let Some(reference) = execute(&spec).unwrap() else {
            return;
        };
        let expected = reference.to_jsonl();
        let expected_timeline = reference.timeline.to_jsonl();

        let mut session = SimSession::start(&spec).unwrap().expect("variant exists");
        let clock = session.clock();
        let total = clock.time_to_cycles(reference.kernel).max(2);
        // Any epoch, including ones past the end (degenerate: the run
        // finishes before its first checkpoint boundary).
        let epoch = g.range(1, total + total / 4 + 2);

        match session.advance(Some(clock.cycles_to_time(epoch))).unwrap() {
            SessionStatus::Finished(out) => {
                assert_eq!(
                    out.to_jsonl(),
                    expected,
                    "{spec:?}: epoch {epoch} past the end must not change the run"
                );
                assert_eq!(
                    out.timeline.to_jsonl(),
                    expected_timeline,
                    "{spec:?}: epoch {epoch} past the end must not change the timeline"
                );
            }
            SessionStatus::Paused { .. } => {
                // Round-trip the envelope exactly as a checkpoint file
                // would, then finish in a brand-new session.
                let text = session.snapshot().to_json();
                let snap = Snapshot::from_json(&text).unwrap();
                let mut restored = SimSession::resume(&spec, &snap).unwrap().unwrap();
                let out = restored.finish().unwrap();
                assert_eq!(
                    out.to_jsonl(),
                    expected,
                    "{spec:?}: restore at cycle {epoch} of ~{total} must be invisible"
                );
                assert_eq!(
                    out.timeline.to_jsonl(),
                    expected_timeline,
                    "{spec:?}: restore at cycle {epoch} must preserve the telemetry timeline"
                );
            }
        }
    });
}

/// A snapshot from the current engine, as serialized text.
fn sample_snapshot() -> String {
    let spec = RunSpec::new(
        "uts",
        Scale::Tiny,
        DesignPoint::accel(PointArch::Flex, 1, 2),
    );
    SimSession::start(&spec)
        .unwrap()
        .unwrap()
        .snapshot()
        .to_json()
}

#[test]
fn foreign_snapshot_versions_are_rejected() {
    let good = sample_snapshot();
    assert!(Snapshot::from_json(&good).is_ok());
    let needle = format!("\"snapshot_version\":{SNAPSHOT_VERSION}");
    assert!(
        good.contains(&needle),
        "envelope must lead with its version"
    );
    let tampered = good.replace(&needle, "\"snapshot_version\":999");
    match Snapshot::from_json(&tampered) {
        Err(SnapshotError::VersionMismatch { found }) => assert_eq!(found, 999),
        other => panic!("expected a version mismatch, got {other:?}"),
    }
}

#[test]
fn corrupted_snapshot_payloads_are_rejected() {
    // A hand-built envelope keeps the corruption surgical: the payload
    // changes, the claimed checksum goes stale.
    let snap = Snapshot::new("flex", parallelxl::JsonValue::parse("{\"pc\":41}").unwrap());
    let good = snap.to_json();
    assert!(Snapshot::from_json(&good).is_ok());
    let corrupted = good.replace("{\"pc\":41}", "{\"pc\":42}");
    assert_ne!(good, corrupted, "corruption must have happened");
    match Snapshot::from_json(&corrupted) {
        Err(SnapshotError::ChecksumMismatch { claimed, actual }) => {
            assert_ne!(claimed, actual);
        }
        other => panic!("expected a checksum mismatch, got {other:?}"),
    }
    // Structurally broken envelopes are malformed, not a crash.
    assert!(matches!(
        Snapshot::from_json("{\"snapshot_version\":1}"),
        Err(SnapshotError::Malformed(_))
    ));
}
