//! Trace serialization round-trip: [`Tracer::to_jsonl`] output parsed by
//! `pxl_profile::parse_jsonl` must reproduce the in-memory records exactly
//! — same count, same order, same payloads — for real traces from every
//! engine, including faulted runs. The re-rendered JSONL must also be
//! byte-identical to the original dump, closing the loop in both
//! directions.

use parallelxl::apps::{suite, Scale};
use parallelxl::arch::AccelConfig;
use parallelxl::profile::{parse_jsonl, parse_line};
use parallelxl::{FaultPlan, SimulationBuilder, Time, TraceRecord, Tracer, Workload};

/// Runs one benchmark traced on the given builder and returns the trace.
fn traced_run(mut builder: SimulationBuilder, bench: &dyn parallelxl::apps::Benchmark) -> Tracer {
    builder.trace(1 << 18);
    let mut engine = builder.build().expect("valid config");
    let inst = bench.flex(engine.mem_mut());
    let mut worker = inst.worker;
    let out = engine
        .run(Workload::dynamic(worker.as_mut(), inst.root))
        .unwrap_or_else(|e| panic!("{}: {e}", bench.meta().name));
    out.trace
}

fn assert_roundtrip(name: &str, trace: &Tracer) {
    let dump = trace.to_jsonl();
    let parsed: Vec<TraceRecord> =
        parse_jsonl(&dump).unwrap_or_else(|e| panic!("{name}: dump does not parse: {e}"));
    assert_eq!(
        parsed.len(),
        trace.len(),
        "{name}: record count changed across the round trip"
    );
    for (i, (got, want)) in parsed.iter().zip(trace.records()).enumerate() {
        assert_eq!(
            got, want,
            "{name}: record {i} changed across the round trip"
        );
    }
    // Ordering is the finished tracer's contract: nondecreasing time,
    // sequence numbers dense from zero.
    for (i, pair) in parsed.windows(2).enumerate() {
        assert!(
            pair[0].at <= pair[1].at,
            "{name}: time went backwards at record {i}"
        );
    }
    for (i, r) in parsed.iter().enumerate() {
        assert_eq!(r.seq, i as u64, "{name}: seq not dense at record {i}");
    }
    // Re-rendering the parsed records must reproduce the dump exactly.
    let rerendered: String = parsed.iter().map(|r| r.to_json() + "\n").collect();
    assert_eq!(rerendered, dump, "{name}: re-rendered JSONL diverges");
}

#[test]
fn every_benchmark_trace_round_trips_on_flex() {
    for bench in suite(Scale::Tiny) {
        let name = bench.meta().name;
        let trace = traced_run(
            SimulationBuilder::from_config(AccelConfig::flex(2, 4), bench.profile()),
            bench.as_ref(),
        );
        assert!(!trace.is_empty(), "{name}: flex run produced no events");
        assert_roundtrip(name, &trace);
    }
}

#[test]
fn cpu_and_central_traces_round_trip() {
    let bench = parallelxl::apps::by_name("uts", Scale::Tiny).unwrap();
    let cpu = traced_run(SimulationBuilder::cpu(4, bench.profile()), bench.as_ref());
    assert_roundtrip("uts/cpu", &cpu);
    let central = traced_run(
        SimulationBuilder::from_config(AccelConfig::central(2, 4), bench.profile()),
        bench.as_ref(),
    );
    assert_roundtrip("uts/central", &central);
}

#[test]
fn faulted_trace_round_trips_including_fault_events() {
    let bench = parallelxl::apps::by_name("queens", Scale::Tiny).unwrap();
    let mut builder = SimulationBuilder::from_config(AccelConfig::flex(2, 4), bench.profile());
    builder.with_faults(FaultPlan::new(0xD1E).kill_pe(3, Time::from_us(2)));
    let trace = traced_run(builder, bench.as_ref());
    assert!(
        trace
            .records()
            .iter()
            .any(|r| r.event.kind().starts_with("fault.")),
        "the kill must appear in the trace"
    );
    assert_roundtrip("queens/kill1", &trace);
}

#[test]
fn task_ids_survive_the_round_trip() {
    use parallelxl::TraceEvent;
    let bench = parallelxl::apps::by_name("queens", Scale::Tiny).unwrap();
    let trace = traced_run(
        SimulationBuilder::from_config(AccelConfig::flex(1, 4), bench.profile()),
        bench.as_ref(),
    );
    let dump = trace.to_jsonl();
    let parsed = parse_jsonl(&dump).unwrap();
    let dispatched: Vec<u64> = parsed
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::TaskDispatch { task, .. } => Some(task),
            _ => None,
        })
        .collect();
    assert!(!dispatched.is_empty());
    assert!(
        dispatched.iter().all(|&t| t != 0),
        "every dispatch must carry a stamped task id"
    );
    assert!(
        dispatched.contains(&1),
        "the root task (id 1) must be dispatched"
    );
}

#[test]
fn malformed_lines_are_rejected_with_context() {
    assert!(parse_line("{\"t_ps\":1,\"seq\":0}").is_err());
    let err = parse_jsonl("{\"t_ps\":1,\"seq\":0,\"kind\":\"spawn\",\"unit\":0,\"ty\":0,\"parent\":0,\"child\":1}\nnot json\n")
        .unwrap_err();
    assert!(err.starts_with("line 2:"), "got: {err}");
}
