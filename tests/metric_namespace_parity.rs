//! Metric-namespace parity across the execution fabric.
//!
//! Every engine is one scheduling policy over the same fabric
//! (docs/fabric.md), so the canonical metric families must be present no
//! matter which policy ran: the accelerator engines (FlexArch, LiteArch,
//! the centralized-queue ablation) all emit `accel.*` and `pe{n}.*`, the
//! CPU baseline the analogous `cpu.*` / `core{n}.*`, and *all* engines
//! register the shared `fault.*` / `watchdog.*` families — fault plan armed
//! or not — so fabric-level counters cannot silently diverge per engine
//! again.

use pxl_bench::{bench, run_central, run_cpu, run_flex, run_lite};
use pxl_sim::Metrics;

/// The fault/watchdog families `pxl_arch::register_fault_metrics` pins at
/// zero in every engine.
const FAULT_FAMILY: [&str; 5] = [
    "fault.injected",
    "fault.recovered",
    "fault.skipped",
    "fault.unrecovered",
    "watchdog.stalls",
];

fn assert_registered(engine: &str, metrics: &Metrics, names: &[&str]) {
    for name in names {
        assert!(
            metrics.kind(name).is_some(),
            "{engine} must register `{name}` (got: {})",
            metrics
                .iter()
                .map(|(k, ..)| k)
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
}

#[test]
fn every_engine_registers_the_canonical_families() {
    let b = bench("queens", pxl_apps::Scale::Tiny);
    let pes = 4;

    let flex = run_flex(b.as_ref(), pes, None);
    let lite = run_lite(b.as_ref(), pes, None).expect("queens has a Lite mapping");
    let central = run_central(b.as_ref(), pes, None);
    let cpu = run_cpu(b.as_ref(), pes);

    // Accelerator engines: one fabric, so one accounting vocabulary.
    for (engine, out) in [("flex", &flex), ("lite", &lite), ("central", &central)] {
        assert_registered(engine, &out.metrics, &["accel.tasks", "accel.ops"]);
        for pe in 0..pes {
            assert_registered(
                engine,
                &out.metrics,
                &[&format!("pe{pe}.tasks"), &format!("pe{pe}.busy_ps")],
            );
        }
    }
    // The CPU baseline mirrors the same shape under its own prefixes.
    assert_registered("cpu", &cpu.metrics, &["cpu.tasks"]);
    for core in 0..pes {
        assert_registered(
            "cpu",
            &cpu.metrics,
            &[&format!("core{core}.tasks"), &format!("core{core}.busy_ps")],
        );
    }

    // The shared fault/watchdog namespace exists everywhere, armed or not.
    for (engine, out) in [
        ("flex", &flex),
        ("lite", &lite),
        ("central", &central),
        ("cpu", &cpu),
    ] {
        assert_registered(engine, &out.metrics, &FAULT_FAMILY);
        for name in FAULT_FAMILY {
            assert_eq!(
                out.metrics.get(name),
                0,
                "{engine}: `{name}` must stay zero on a fault-free run"
            );
        }
    }
}

/// The dynamic engines also share the steal-accounting vocabulary — the
/// policies differ in *how* tasks move, not in what gets counted.
#[test]
fn dynamic_engines_share_the_steal_vocabulary() {
    let b = bench("uts", pxl_apps::Scale::Tiny);
    let flex = run_flex(b.as_ref(), 4, None);
    let central = run_central(b.as_ref(), 4, None);
    for (engine, out) in [("flex", &flex), ("central", &central)] {
        assert_registered(
            engine,
            &out.metrics,
            &[
                "accel.steal_attempts",
                "accel.steal_hits",
                "accel.spawns",
                "accel.queue_peak_sum",
                "accel.pstore_peak_sum",
            ],
        );
        assert!(
            out.metrics.get("accel.steal_hits") > 0,
            "{engine} must move tasks through its queues"
        );
    }
}
