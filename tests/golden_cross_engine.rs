//! Cross-engine golden validation: every benchmark must produce
//! golden-correct output on the serial reference, FlexArch at several PE
//! counts, LiteArch, and the CPU baseline — and all engines must agree on
//! the computed result value.

use parallelxl::apps::{suite, Scale};
use parallelxl::model::SerialExecutor;
use parallelxl::sim::qcheck::{check, Gen};
use parallelxl::{FaultPlan, Time};
use pxl_bench::{run_cpu, run_flex, run_lite};

#[test]
fn every_benchmark_is_golden_on_every_engine() {
    for bench in suite(Scale::Tiny) {
        let name = bench.meta().name;

        // Serial reference.
        let mut serial = SerialExecutor::new();
        let inst = bench.flex(serial.mem_mut());
        let mut worker = inst.worker;
        let serial_result = serial
            .run(worker.as_mut(), inst.root)
            .unwrap_or_else(|e| panic!("{name} serial: {e}"));
        bench
            .check(serial.memory(), serial_result)
            .unwrap_or_else(|e| panic!("{name} serial: {e}"));

        // FlexArch at 1, 4 and 16 PEs (run_flex checks internally and
        // panics on validation failure).
        for pes in [1usize, 4, 16] {
            let _ = run_flex(bench.as_ref(), pes, None);
        }
        // LiteArch (where the benchmark has a mapping).
        let _ = run_lite(bench.as_ref(), 4, None);
        // CPU baseline.
        let _ = run_cpu(bench.as_ref(), 2);
    }
}

#[test]
fn engines_agree_on_result_values() {
    // Benchmarks whose result value is a pure function of the input
    // (deterministic under any schedule).
    for name in ["queens", "uts", "quicksort", "cilksort", "bbgemm"] {
        let bench = parallelxl::apps::by_name(name, Scale::Tiny).unwrap();
        let mut serial = SerialExecutor::new();
        let inst = bench.flex(serial.mem_mut());
        let mut worker = inst.worker;
        let want = serial.run(worker.as_mut(), inst.root).unwrap();
        let flex = run_flex(bench.as_ref(), 8, None);
        let cpu = run_cpu(bench.as_ref(), 4);
        // run_flex/run_cpu validate against golden; compare the raw result
        // words across engines too.
        assert!(
            flex.metrics.get("accel.tasks") > 0,
            "{name}: flex ran tasks"
        );
        let flex_result = {
            // Re-run to capture the result (RunOutcome does not carry it);
            // validated equality is what matters here.
            let mut engine = parallelxl::arch::FlexEngine::new(
                parallelxl::arch::AccelConfig::flex(2, 4),
                bench.profile(),
            );
            let inst = bench.flex(engine.mem_mut());
            let mut w = inst.worker;
            engine.run(w.as_mut(), inst.root).unwrap().result
        };
        assert_eq!(flex_result, want, "{name}: flex result differs from serial");
        let _ = cpu;
    }
}

/// Killing any single PE at any point of the run never changes the computed
/// result: the FlexArch fabric reroutes, rescues, and finishes with the
/// fault-free golden value.
#[test]
fn single_pe_death_preserves_the_golden_result() {
    check(10, "single PE death stays golden", |g: &mut Gen| {
        let name = *g.pick(&["queens", "uts", "quicksort", "cilksort"]);
        let bench = parallelxl::apps::by_name(name, Scale::Tiny).unwrap();

        let run_with = |plan: Option<FaultPlan>| {
            let mut cfg = parallelxl::arch::AccelConfig::flex(2, 4);
            cfg.fault_plan = plan;
            let mut engine = parallelxl::arch::FlexEngine::new(cfg, bench.profile());
            let inst = bench.flex(engine.mem_mut());
            let mut w = inst.worker;
            let out = engine.run(w.as_mut(), inst.root).expect("run completes");
            bench
                .check(engine.memory(), out.result)
                .expect("run stays golden");
            (out.result, out.metrics)
        };

        let (golden, _) = run_with(None);
        let pe = g.usize_in(0, 8);
        let at = Time::from_ps(g.range(0, 40_000_000)); // anywhere in [0, 40 us)
        let (faulted, metrics) = run_with(Some(FaultPlan::new(g.u64()).kill_pe(pe, at)));
        assert_eq!(
            faulted, golden,
            "{name}: killing PE {pe} at {at} changed the result"
        );
        assert_eq!(
            metrics.get("fault.recovered"),
            metrics.get("fault.injected"),
            "{name}: recovery accounting must balance"
        );
        assert_eq!(metrics.get("fault.unrecovered"), 0);
    });
}

/// Same-seed golden equivalence against on-disk fixtures captured from the
/// pre-refactor engines: the exact trace bytes, result word, elapsed time,
/// and every metric value must be reproduced. Refresh the fixtures only
/// when a behavioural change is intended:
///
/// ```text
/// PXL_UPDATE_FIXTURES=1 cargo test --test golden_cross_engine fixtures
/// ```
mod fixtures {
    use parallelxl::apps::{by_name, Scale};
    use parallelxl::arch::{
        AccelConfig, AccelResult, CentralEngine, ClusterConfig, FlexEngine, HierEngine, LiteEngine,
    };
    use parallelxl::sim::metrics::{MetricKind, Metrics};
    use parallelxl::{FaultPlan, NetClass, Time};
    use std::fmt::Write as _;
    use std::path::PathBuf;

    const TRACE_CAPACITY: usize = 1 << 16;

    fn dir() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
    }

    /// Serializes result/elapsed plus every counter (and histogram summary)
    /// as stable `key=value` lines.
    fn metrics_lines(out: &AccelResult) -> String {
        let mut lines = String::new();
        writeln!(lines, "result={}", out.result).unwrap();
        writeln!(lines, "elapsed_ps={}", out.elapsed.as_ps()).unwrap();
        let mut rows: Vec<String> = Vec::new();
        for (name, kind, value, hist) in out.metrics.iter() {
            // The seed's `accel.pstore_peak` is a sum of per-P-Store peaks;
            // it is renamed to `accel.pstore_peak_sum` in this change, so
            // fixtures are written under the new name.
            let name = if name == "accel.pstore_peak" {
                "accel.pstore_peak_sum"
            } else {
                name
            };
            match kind {
                MetricKind::Histogram => {
                    rows.push(format!("hist:{name}.count={}", hist.count()));
                    rows.push(format!("hist:{name}.sum={}", hist.sum()));
                }
                _ => rows.push(format!("{name}={value}")),
            }
        }
        rows.sort();
        for row in rows {
            lines.push_str(&row);
            lines.push('\n');
        }
        lines
    }

    /// Looks a fixture key up in a run's metrics, tolerating the pre-rename
    /// counter name so the harness itself can be validated against the seed.
    fn metric_value(m: &Metrics, key: &str) -> Option<u64> {
        if let Some(stripped) = key.strip_prefix("hist:") {
            let (name, field) = stripped.rsplit_once('.')?;
            let h = m.histogram(name)?;
            return Some(match field {
                "count" => h.count(),
                "sum" => h.sum(),
                _ => return None,
            });
        }
        if m.kind(key).is_some() {
            return Some(m.get(key));
        }
        if key == "accel.pstore_peak_sum" && m.kind("accel.pstore_peak").is_some() {
            return Some(m.get("accel.pstore_peak"));
        }
        None
    }

    fn check_case(name: &str, out: &AccelResult) {
        let update = std::env::var_os("PXL_UPDATE_FIXTURES").is_some();
        let trace_path = dir().join(format!("{name}.trace.jsonl"));
        let metrics_path = dir().join(format!("{name}.metrics.txt"));
        let trace = out.trace.to_jsonl();
        let metrics = metrics_lines(out);
        if update {
            std::fs::create_dir_all(dir()).expect("create fixture dir");
            std::fs::write(&trace_path, &trace).expect("write trace fixture");
            std::fs::write(&metrics_path, &metrics).expect("write metrics fixture");
            return;
        }
        let want_trace = std::fs::read_to_string(&trace_path)
            .unwrap_or_else(|e| panic!("{name}: missing fixture {} ({e})", trace_path.display()));
        if trace != want_trace {
            let diff = trace
                .lines()
                .zip(want_trace.lines())
                .enumerate()
                .find(|(_, (a, b))| a != b);
            match diff {
                Some((i, (got, want))) => panic!(
                    "{name}: trace diverges from fixture at line {}:\n  got:  {got}\n  want: {want}",
                    i + 1
                ),
                None => panic!(
                    "{name}: trace length changed ({} vs fixture {})",
                    trace.lines().count(),
                    want_trace.lines().count()
                ),
            }
        }
        let want_metrics = std::fs::read_to_string(&metrics_path)
            .unwrap_or_else(|e| panic!("{name}: missing fixture {} ({e})", metrics_path.display()));
        for line in want_metrics.lines() {
            let (key, value) = line.split_once('=').expect("key=value fixture line");
            let want: u64 = value.parse().expect("numeric fixture value");
            let got = match key {
                "result" => out.result,
                "elapsed_ps" => out.elapsed.as_ps(),
                _ => metric_value(&out.metrics, key)
                    .unwrap_or_else(|| panic!("{name}: metric {key} disappeared")),
            };
            assert_eq!(got, want, "{name}: metric {key} diverged from fixture");
        }
    }

    fn run_flex_case(
        bench_name: &str,
        tiles: usize,
        pes: usize,
        plan: Option<FaultPlan>,
    ) -> AccelResult {
        let bench = by_name(bench_name, Scale::Tiny).unwrap();
        let mut cfg = AccelConfig::flex(tiles, pes);
        cfg.trace_capacity = TRACE_CAPACITY;
        cfg.fault_plan = plan;
        let mut engine = FlexEngine::new(cfg, bench.profile());
        let inst = bench.flex(engine.mem_mut());
        let mut worker = inst.worker;
        let out = engine
            .run(worker.as_mut(), inst.root)
            .expect("run completes");
        bench
            .check(engine.memory(), out.result)
            .expect("run stays golden");
        out
    }

    fn run_lite_case(
        bench_name: &str,
        tiles: usize,
        pes: usize,
        plan: Option<FaultPlan>,
    ) -> AccelResult {
        let bench = by_name(bench_name, Scale::Tiny).unwrap();
        let mut cfg = AccelConfig::lite(tiles, pes);
        cfg.trace_capacity = TRACE_CAPACITY;
        cfg.fault_plan = plan;
        let mut engine = LiteEngine::new(cfg, bench.profile());
        let inst = bench.lite(engine.mem_mut()).expect("Lite mapping exists");
        let mut worker = inst.worker;
        let mut driver = inst.driver;
        let out = engine
            .run(worker.as_mut(), driver.as_mut())
            .expect("run completes");
        bench
            .check(engine.memory(), out.result)
            .expect("run stays golden");
        out
    }

    fn run_central_case(
        bench_name: &str,
        tiles: usize,
        pes: usize,
        plan: Option<FaultPlan>,
    ) -> AccelResult {
        let bench = by_name(bench_name, Scale::Tiny).unwrap();
        let mut cfg = AccelConfig::central(tiles, pes);
        cfg.trace_capacity = TRACE_CAPACITY;
        cfg.fault_plan = plan;
        let mut engine = CentralEngine::new(cfg, bench.profile());
        let inst = bench.flex(engine.mem_mut());
        let mut worker = inst.worker;
        let out = engine
            .run(worker.as_mut(), inst.root)
            .expect("run completes");
        bench
            .check(engine.memory(), out.result)
            .expect("run stays golden");
        out
    }

    fn run_hier_case(
        bench_name: &str,
        tiles: usize,
        pes: usize,
        chips: usize,
        plan: Option<FaultPlan>,
    ) -> AccelResult {
        let bench = by_name(bench_name, Scale::Tiny).unwrap();
        let mut cfg = AccelConfig::flex(tiles, pes);
        cfg.trace_capacity = TRACE_CAPACITY;
        cfg.fault_plan = plan;
        cfg.cluster = Some(ClusterConfig::new(chips));
        let mut engine = HierEngine::new(cfg, bench.profile());
        let inst = bench.flex(engine.mem_mut());
        let mut worker = inst.worker;
        let out = engine
            .run(worker.as_mut(), inst.root)
            .expect("run completes");
        bench
            .check(engine.memory(), out.result)
            .expect("run stays golden");
        out
    }

    #[test]
    fn flex_fixtures_are_reproduced_byte_for_byte() {
        check_case("queens_flex_1x4", &run_flex_case("queens", 1, 4, None));
        check_case("uts_flex_2x4", &run_flex_case("uts", 2, 4, None));
        let mixed = FaultPlan::new(0xFA_17)
            .kill_pe(5, Time::from_us(2))
            .stall_pe(1, Time::from_us(1), 400)
            .drop_messages(NetClass::Arg, Time::ZERO, Time::MAX, 400, 6)
            .drop_messages(NetClass::Task, Time::ZERO, Time::MAX, 400, 4)
            .duplicate_messages(NetClass::Arg, Time::ZERO, Time::MAX, 400, 6)
            .duplicate_messages(NetClass::Task, Time::ZERO, Time::MAX, 400, 4)
            .corrupt_pstore(0, Time::from_us(3), 0xFFFF);
        check_case(
            "queens_flex_2x4_mixed_faults",
            &run_flex_case("queens", 2, 4, Some(mixed)),
        );
    }

    #[test]
    fn lite_fixtures_are_reproduced_byte_for_byte() {
        check_case("uts_lite_1x4", &run_lite_case("uts", 1, 4, None));
        let plan = FaultPlan::new(3)
            .kill_pe(1, Time::ZERO)
            .stall_pe(2, Time::from_us(1), 2_000);
        check_case(
            "uts_lite_1x4_faults",
            &run_lite_case("uts", 1, 4, Some(plan)),
        );
    }

    /// The centralized-queue ablation runs on the same fabric, so its trace
    /// and metric bytes gate the shared hot paths from a second angle: one
    /// contended queue instead of distributed stealing.
    #[test]
    fn central_fixtures_are_reproduced_byte_for_byte() {
        check_case(
            "queens_central_1x4",
            &run_central_case("queens", 1, 4, None),
        );
        check_case("uts_central_2x4", &run_central_case("uts", 2, 4, None));
        let plan = FaultPlan::new(0xCE_11)
            .kill_pe(3, Time::from_us(2))
            .stall_pe(0, Time::from_us(1), 400);
        check_case(
            "uts_central_2x4_faults",
            &run_central_case("uts", 2, 4, Some(plan)),
        );
    }

    /// A genuinely multi-chip hierarchical run: inter-chip link occupancy,
    /// `link_xfer` trace events and the two-level steal policy all land in
    /// the fixture bytes.
    #[test]
    fn hier_fixtures_are_reproduced_byte_for_byte() {
        check_case("uts_hier_2x4_2chips", &run_hier_case("uts", 2, 4, 2, None));
        let plan = FaultPlan::new(0x41E7)
            .kill_pe(6, Time::from_us(2))
            .drop_messages(NetClass::Task, Time::ZERO, Time::MAX, 400, 5);
        check_case(
            "queens_hier_2x4_2chips_faults",
            &run_hier_case("queens", 2, 4, 2, Some(plan)),
        );
    }
}

#[test]
fn small_scale_flex_spot_check() {
    // One larger configuration exercising multi-tile work stealing and the
    // coherent hierarchy harder than Tiny.
    for name in ["uts", "nw", "spmvcrs"] {
        let bench = parallelxl::apps::by_name(name, Scale::Small).unwrap();
        let out = run_flex(bench.as_ref(), 16, None);
        assert!(
            out.metrics.get("accel.steal_hits") > 0,
            "{name}: 16-PE run must migrate work"
        );
    }
}
