//! Cross-engine golden validation: every benchmark must produce
//! golden-correct output on the serial reference, FlexArch at several PE
//! counts, LiteArch, and the CPU baseline — and all engines must agree on
//! the computed result value.

use parallelxl::apps::{suite, Scale};
use parallelxl::model::SerialExecutor;
use parallelxl::sim::qcheck::{check, Gen};
use parallelxl::{FaultPlan, Time};
use pxl_bench::{run_cpu, run_flex, run_lite};

#[test]
fn every_benchmark_is_golden_on_every_engine() {
    for bench in suite(Scale::Tiny) {
        let name = bench.meta().name;

        // Serial reference.
        let mut serial = SerialExecutor::new();
        let inst = bench.flex(serial.mem_mut());
        let mut worker = inst.worker;
        let serial_result = serial
            .run(worker.as_mut(), inst.root)
            .unwrap_or_else(|e| panic!("{name} serial: {e}"));
        bench
            .check(serial.memory(), serial_result)
            .unwrap_or_else(|e| panic!("{name} serial: {e}"));

        // FlexArch at 1, 4 and 16 PEs (run_flex checks internally and
        // panics on validation failure).
        for pes in [1usize, 4, 16] {
            let _ = run_flex(bench.as_ref(), pes, None);
        }
        // LiteArch (where the benchmark has a mapping).
        let _ = run_lite(bench.as_ref(), 4, None);
        // CPU baseline.
        let _ = run_cpu(bench.as_ref(), 2);
    }
}

#[test]
fn engines_agree_on_result_values() {
    // Benchmarks whose result value is a pure function of the input
    // (deterministic under any schedule).
    for name in ["queens", "uts", "quicksort", "cilksort", "bbgemm"] {
        let bench = parallelxl::apps::by_name(name, Scale::Tiny).unwrap();
        let mut serial = SerialExecutor::new();
        let inst = bench.flex(serial.mem_mut());
        let mut worker = inst.worker;
        let want = serial.run(worker.as_mut(), inst.root).unwrap();
        let flex = run_flex(bench.as_ref(), 8, None);
        let cpu = run_cpu(bench.as_ref(), 4);
        // run_flex/run_cpu validate against golden; compare the raw result
        // words across engines too.
        assert!(
            flex.metrics.get("accel.tasks") > 0,
            "{name}: flex ran tasks"
        );
        let flex_result = {
            // Re-run to capture the result (RunOutcome does not carry it);
            // validated equality is what matters here.
            let mut engine = parallelxl::arch::FlexEngine::new(
                parallelxl::arch::AccelConfig::flex(2, 4),
                bench.profile(),
            );
            let inst = bench.flex(engine.mem_mut());
            let mut w = inst.worker;
            engine.run(w.as_mut(), inst.root).unwrap().result
        };
        assert_eq!(flex_result, want, "{name}: flex result differs from serial");
        let _ = cpu;
    }
}

/// Killing any single PE at any point of the run never changes the computed
/// result: the FlexArch fabric reroutes, rescues, and finishes with the
/// fault-free golden value.
#[test]
fn single_pe_death_preserves_the_golden_result() {
    check(10, "single PE death stays golden", |g: &mut Gen| {
        let name = *g.pick(&["queens", "uts", "quicksort", "cilksort"]);
        let bench = parallelxl::apps::by_name(name, Scale::Tiny).unwrap();

        let run_with = |plan: Option<FaultPlan>| {
            let mut cfg = parallelxl::arch::AccelConfig::flex(2, 4);
            cfg.fault_plan = plan;
            let mut engine = parallelxl::arch::FlexEngine::new(cfg, bench.profile());
            let inst = bench.flex(engine.mem_mut());
            let mut w = inst.worker;
            let out = engine.run(w.as_mut(), inst.root).expect("run completes");
            bench
                .check(engine.memory(), out.result)
                .expect("run stays golden");
            (out.result, out.metrics)
        };

        let (golden, _) = run_with(None);
        let pe = g.usize_in(0, 8);
        let at = Time::from_ps(g.range(0, 40_000_000)); // anywhere in [0, 40 us)
        let (faulted, metrics) = run_with(Some(FaultPlan::new(g.u64()).kill_pe(pe, at)));
        assert_eq!(
            faulted, golden,
            "{name}: killing PE {pe} at {at} changed the result"
        );
        assert_eq!(
            metrics.get("fault.recovered"),
            metrics.get("fault.injected"),
            "{name}: recovery accounting must balance"
        );
        assert_eq!(metrics.get("fault.unrecovered"), 0);
    });
}

#[test]
fn small_scale_flex_spot_check() {
    // One larger configuration exercising multi-tile work stealing and the
    // coherent hierarchy harder than Tiny.
    for name in ["uts", "nw", "spmvcrs"] {
        let bench = parallelxl::apps::by_name(name, Scale::Small).unwrap();
        let out = run_flex(bench.as_ref(), 16, None);
        assert!(
            out.metrics.get("accel.steal_hits") > 0,
            "{name}: 16-PE run must migrate work"
        );
    }
}
