//! Wire-protocol and service-contract tests for simulation-as-a-service:
//! property-based round-trips of [`RunSpec`] and [`JobEvent`] (driven by
//! the vendored `pxl_sim::qcheck` harness), typed rejection of malformed
//! requests over a real socket, and the end-to-end determinism guarantee —
//! the same spec submitted twice returns byte-identical payloads, the
//! second from the content-addressed cache.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use parallelxl::benchmarks::Scale;
use parallelxl::serve::{
    measurement_to_json_value, Client, ErrorCode, JobEvent, JobId, JobKind, Request, Server,
    ServerConfig,
};
use parallelxl::sim::qcheck::{check, Gen};
use parallelxl::sim::{FaultPlan, NetClass, Time};
use parallelxl::{DesignPoint, ExecProfile, PointArch, RunSpec};

fn arb_point(g: &mut Gen) -> DesignPoint {
    if g.ratio(1, 4) {
        return DesignPoint::cpu(g.usize_in(1, 16));
    }
    let arch = *g.pick(&[PointArch::Flex, PointArch::Central, PointArch::Lite]);
    DesignPoint {
        arch,
        tiles: g.usize_in(1, 8),
        pes_per_tile: g.usize_in(1, 16),
        cache_kb: g.usize_in(1, 64),
        task_queue_entries: g.usize_in(1, 4096),
        pstore_entries: g.usize_in(1, 16384),
        cluster: None,
    }
}

fn arb_faults(g: &mut Gen) -> FaultPlan {
    let mut plan = FaultPlan::new(g.u64());
    for _ in 0..g.usize_in(1, 4) {
        let at = Time::from_ps(g.range(1, 1_000_000_000));
        plan = match g.range(0, 5) {
            0 => plan.kill_pe(g.usize_in(0, 15), at),
            1 => plan.stall_pe(g.usize_in(0, 15), at, g.range(1, 100_000)),
            2 => {
                let net = *g.pick(&[NetClass::Task, NetClass::Arg]);
                plan.drop_messages(
                    net,
                    at,
                    at + Time::from_ps(g.range(1, 1_000_000)),
                    g.range(1, 1000) as u16,
                    g.range(0, 100) as u32,
                )
            }
            3 => {
                let net = *g.pick(&[NetClass::Task, NetClass::Arg]);
                plan.duplicate_messages(
                    net,
                    at,
                    at + Time::from_ps(g.range(1, 1_000_000)),
                    g.range(1, 1000) as u16,
                    g.range(0, 100) as u32,
                )
            }
            _ => plan.corrupt_pstore(g.usize_in(0, 7), at, g.u64()),
        };
    }
    plan
}

fn arb_spec(g: &mut Gen) -> RunSpec {
    let bench = *g.pick(&["uts", "queens", "cilksort", "bfsqueue", "made-up"]);
    let scale = *g.pick(&[Scale::Tiny, Scale::Small, Scale::Paper]);
    let mut spec = RunSpec::new(bench, scale, arb_point(g));
    if g.bool() {
        spec = spec.with_trace(g.usize_in(1, 1 << 20));
    }
    if g.ratio(1, 3) {
        // Strictly positive, non-round floats so exact f64 round-tripping
        // is actually exercised.
        spec = spec.with_profile(ExecProfile::new(
            g.range(1, 1_000_000) as f64 / 997.0,
            g.range(1, 1_000_000) as f64 / 131.0,
        ));
    }
    if g.ratio(1, 3) {
        spec = spec.with_faults(arb_faults(g));
    }
    spec
}

/// Any spec survives JSON exactly: parse(render(s)) == s, re-rendering is
/// byte-identical, and the canonical identity is stable across the trip.
#[test]
fn run_specs_round_trip_exactly() {
    check(128, "RunSpec JSON round-trip", |g: &mut Gen| {
        let spec = arb_spec(g);
        let json = spec.to_json();
        let back = RunSpec::from_json(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), json, "re-render must be byte-identical");
        assert_eq!(back.canonical(), spec.canonical());
    });
}

fn arb_event(g: &mut Gen) -> JobEvent {
    let job = JobId(g.u64());
    let result = parallelxl::dse::Measurement {
        kernel_ps: g.u64(),
        whole_ps: g.u64(),
        energy_j: g.range(1, u64::MAX) as f64 / 1.7e18,
        lut: g.range(0, 1 << 20),
        bram18: g.range(0, 1 << 10),
    };
    match g.range(0, 12) {
        0 => JobEvent::Accepted {
            job,
            tenant: format!("tenant-{}", g.range(0, 100)),
            key: format!("{:016x}", g.u64()),
        },
        1 => JobEvent::Queued {
            job,
            position: g.range(0, 1000),
        },
        2 => JobEvent::Running { job },
        3 => JobEvent::Metrics {
            job,
            kernel_ps: g.u64(),
            steal_attempts: g.u64(),
            dram_bytes: g.u64(),
            trace_events: g.u64(),
        },
        4 => JobEvent::Done {
            job,
            cached: g.bool(),
            result,
            trace_events: g.bool().then(|| g.u64()),
            resumed_from_cycle: g.bool().then(|| g.u64()),
        },
        5 => JobEvent::Failed {
            job,
            error: format!("uts on flex/{}u failed: watchdog", g.range(1, 64)),
        },
        6 => JobEvent::Error {
            code: *g.pick(&[
                ErrorCode::BadJson,
                ErrorCode::BadRequest,
                ErrorCode::UnknownOp,
                ErrorCode::BadSpec,
                ErrorCode::QuotaExceeded,
                ErrorCode::Draining,
            ]),
            message: format!("case {}", g.u64()),
        },
        7 => JobEvent::Status {
            queued: g.range(0, 1000),
            running: g.range(0, 64),
            completed: g.u64(),
            failed: g.u64(),
            paused: g.bool(),
            draining: g.bool(),
        },
        8 => JobEvent::Preempted {
            job,
            cycle: g.u64(),
        },
        9 => JobEvent::Stats {
            tenants: (0..g.usize_in(0, 3))
                .map(|i| (format!("tenant-{i}"), g.range(0, 100)))
                .collect(),
            queued: g.range(0, 1000),
            running: g.range(0, 64),
            completed: g.u64(),
            failed: g.u64(),
            recovered: g.u64(),
            resumed: g.u64(),
            preempted: g.u64(),
            journal_torn: g.u64(),
            journal: g.bool(),
            paused: g.bool(),
            draining: g.bool(),
        },
        10 => JobEvent::Progress {
            job,
            cycle: g.u64(),
            tasks: g.u64(),
            tasks_per_sec: g.u64(),
        },
        _ => JobEvent::Drained { completed: g.u64() },
    }
}

/// Any event survives the wire exactly, including `u64::MAX` counters and
/// awkward `f64` energies.
#[test]
fn job_events_round_trip_exactly() {
    check(256, "JobEvent JSON round-trip", |g: &mut Gen| {
        let event = arb_event(g);
        let line = event.to_json();
        let back = JobEvent::from_json(&line).unwrap_or_else(|e| panic!("{e}\n{line}"));
        assert_eq!(back, event);
        assert_eq!(back.to_json(), line, "re-render must be byte-identical");
    });
}

/// Malformed lines sent over a real socket come back as typed `error`
/// events with the documented codes — the server never disconnects or
/// crashes on garbage.
#[test]
fn malformed_requests_are_rejected_with_typed_codes() {
    let server = Server::start(ServerConfig::default()).unwrap();
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let cases = [
        ("{\"op\":", ErrorCode::BadJson),
        ("42", ErrorCode::BadRequest),
        ("{\"op\":\"emit\"}", ErrorCode::UnknownOp),
        ("{\"op\":\"submit\",\"kind\":\"sim\"}", ErrorCode::BadRequest),
        (
            "{\"op\":\"submit\",\"tenant\":\"t\",\"kind\":\"sim\",\"spec\":{\"benchmark\":\"uts\"}}",
            ErrorCode::BadSpec,
        ),
    ];
    for (line, expected) in cases {
        writeln!(writer, "{line}").unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        match JobEvent::from_json(reply.trim_end()).unwrap() {
            JobEvent::Error { code, message } => {
                assert_eq!(code, expected, "{line} → {code:?}: {message}");
                assert!(!message.is_empty());
                if code == ErrorCode::UnknownOp {
                    assert!(
                        message.contains("\"emit\""),
                        "an unknown-op rejection must name the op: {message:?}"
                    );
                }
            }
            other => panic!("{line}: expected a typed error, got {other:?}"),
        }
    }
    // The connection is still healthy after all that garbage.
    writeln!(writer, "{}", Request::Status.to_json()).unwrap();
    writer.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(matches!(
        JobEvent::from_json(reply.trim_end()).unwrap(),
        JobEvent::Status {
            queued: 0,
            running: 0,
            ..
        }
    ));
    let mut client = Client::connect(server.addr()).unwrap();
    client.drain().unwrap();
    server.join();
}

/// The determinism contract end to end: submitting the same spec twice
/// yields byte-identical `done` payloads, and the second is a pure
/// content-addressed cache hit.
#[test]
fn same_spec_twice_is_deterministic_and_cached() {
    let server = Server::start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let spec = RunSpec::new(
        "queens",
        Scale::Tiny,
        DesignPoint::accel(PointArch::Flex, 1, 4),
    );
    let (j1, key1) = client.submit_with_key("ci", JobKind::Dse, &spec).unwrap();
    let first = client.wait(j1).unwrap();
    let (j2, key2) = client.submit_with_key("ci", JobKind::Dse, &spec).unwrap();
    let second = client.wait(j2).unwrap();
    assert_eq!(key1, key2, "identical specs must share a content address");
    let (
        JobEvent::Done {
            cached: c1,
            result: r1,
            ..
        },
        JobEvent::Done {
            cached: c2,
            result: r2,
            ..
        },
    ) = (&first, &second)
    else {
        panic!("expected done events, got {first:?} / {second:?}");
    };
    assert!(!*c1, "first submission must simulate");
    assert!(*c2, "second submission must be a cache hit");
    assert_eq!(
        measurement_to_json_value(r1).to_json(),
        measurement_to_json_value(r2).to_json(),
        "payloads must be byte-identical"
    );
    client.drain().unwrap();
    let summary = server.join();
    assert_eq!(summary.cache_hits, 1);
    assert_eq!(summary.cache_misses, 1);
}

/// The `stats` op over a real socket: the reply is byte-stable (two asks
/// against unchanged state are identical lines), and the typed
/// `Client::stats()` reflects completed work and per-tenant depths.
#[test]
fn stats_round_trips_over_a_socket_and_is_byte_stable() {
    let server = Server::start(ServerConfig::default()).unwrap();
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut lines = Vec::new();
    for _ in 0..2 {
        writeln!(writer, "{}", Request::Stats.to_json()).unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        lines.push(reply.trim_end().to_owned());
    }
    assert_eq!(
        lines[0], lines[1],
        "unchanged state must render identically"
    );
    match JobEvent::from_json(&lines[0]).unwrap() {
        JobEvent::Stats {
            tenants,
            queued,
            running,
            completed,
            journal,
            ..
        } => {
            assert!(tenants.is_empty(), "no tenant has submitted yet");
            assert_eq!((queued, running, completed), (0, 0, 0));
            assert!(!journal, "no journal was configured");
        }
        other => panic!("expected a stats event, got {other:?}"),
    }

    // The typed client sees finished work and the (drained) tenant.
    let mut client = Client::connect(server.addr()).unwrap();
    let spec = RunSpec::new(
        "queens",
        Scale::Tiny,
        DesignPoint::accel(PointArch::Flex, 1, 4),
    );
    let job = client.submit("carol", JobKind::Sim, &spec).unwrap();
    match client.wait(job).unwrap() {
        JobEvent::Done { .. } => {}
        other => panic!("unexpected {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.tenants, vec![("carol".to_owned(), 0)]);
    assert!(!stats.journal);
    client.drain().unwrap();
    server.join();
}

/// A checkpointed job reports `progress` at every epoch boundary: cycles
/// are ascending epoch multiples and the task count never goes backwards.
#[test]
fn checkpointed_jobs_report_progress_beats() {
    let base = RunSpec::new(
        "uts",
        Scale::Tiny,
        DesignPoint::accel(PointArch::Flex, 1, 2),
    );
    let reference = parallelxl::flow::execute(&base).unwrap().unwrap();
    let session = parallelxl::flow::SimSession::start(&base).unwrap().unwrap();
    let epoch = session
        .clock()
        .time_to_cycles(Time::from_ps(reference.kernel.as_ps() / 4))
        .max(1);

    let server = Server::start(ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let job = client
        .submit("ci", JobKind::Sim, &base.with_checkpoint(epoch))
        .unwrap();
    let mut beats: Vec<parallelxl::serve::Progress> = Vec::new();
    let terminal = client.wait_with_progress(job, |p| beats.push(p)).unwrap();
    match terminal {
        JobEvent::Done { .. } => {}
        other => panic!("unexpected {other:?}"),
    }
    assert!(
        !beats.is_empty(),
        "an epoch of {epoch} cycles must yield at least one boundary"
    );
    for pair in beats.windows(2) {
        assert!(pair[0].cycle < pair[1].cycle, "cycles must ascend");
        assert!(pair[0].tasks <= pair[1].tasks, "tasks must not regress");
    }
    for p in &beats {
        assert_eq!(p.job, job);
        assert_eq!(p.cycle % epoch, 0, "beats land on epoch boundaries");
    }
    client.drain().unwrap();
    server.join();
}
