//! Integration tests for the design-space exploration engine: Pareto-front
//! invariants on a hand-checkable space of real simulations, strategy
//! agreement (successive halving must find the grid's fastest point), and
//! cache-backed determinism across explorer instances.

use parallelxl::dse::{dominates, Evaluated, Exploration};
use parallelxl::{
    apps::Scale, cost::FpgaDevice, Axis, Explorer, PointArch, ResultCache, SearchSpace, Strategy,
};
use pxl_bench::BenchEvaluator;

/// A hand-checkable 3-axis accelerator space: 2 tiles × 2 PE counts ×
/// 2 cache sizes on one benchmark, all feasible.
fn small_space() -> SearchSpace {
    SearchSpace::new()
        .benchmarks(["queens"])
        .archs([PointArch::Flex])
        .tiles(Axis::list([1, 2]))
        .pes_per_tile(Axis::list([2, 4]))
        .cache_kb(Axis::list([16, 32]))
}

/// The CI smoke space: three architectures, three benchmarks, with all three
/// prune reasons represented (bad cache geometry, missing LiteArch variant,
/// tiles that overflow the Artix-7).
fn smoke_space() -> SearchSpace {
    SearchSpace::new()
        .benchmarks(["queens", "cilksort", "bfsqueue"])
        .archs([PointArch::Flex, PointArch::Lite, PointArch::Cpu])
        .tiles(Axis::list([1, 2]))
        .pes_per_tile(Axis::list([2, 4]))
        .cache_kb(Axis::list([16, 32, 48]))
        .device(FpgaDevice::artix_7a75t())
}

fn measurements_for<'a>(outcome: &'a Exploration, bench: &str) -> Vec<&'a Evaluated> {
    outcome
        .evaluated
        .iter()
        .filter(|e| e.benchmark == bench)
        .collect()
}

#[test]
fn pareto_front_is_exactly_the_undominated_set() {
    let evaluator = BenchEvaluator::new(Scale::Tiny, Scale::Tiny);
    let outcome = Explorer::new(&evaluator).explore(&small_space());
    assert!(outcome.failed.is_empty(), "failures: {:?}", outcome.failed);
    assert_eq!(outcome.evaluated.len(), 8);

    let all = measurements_for(&outcome, "queens");
    let front = outcome.front_for("queens").expect("front exists");
    assert!(!front.points.is_empty() && front.points.len() <= all.len());

    // Every front point came from the evaluated set and is undominated.
    for fp in &front.points {
        let source = all
            .iter()
            .find(|e| e.point == fp.point)
            .expect("front point was evaluated");
        assert_eq!(source.measurement, fp.measurement);
        for other in &all {
            assert!(
                !dominates(&other.measurement, &fp.measurement),
                "{} dominates front point {}",
                other.point.spec(),
                fp.point.spec()
            );
        }
    }
    // Every evaluated point left out of the front is dominated by a front
    // point (the front is maximal, not just consistent).
    for e in &all {
        let in_front = front.points.iter().any(|fp| fp.point == e.point);
        if !in_front {
            assert!(
                front
                    .points
                    .iter()
                    .any(|fp| dominates(&fp.measurement, &e.measurement)),
                "{} is undominated but missing from the front",
                e.point.spec()
            );
        }
    }
    // Exactly one knee, and it lies on the front.
    assert_eq!(front.points.iter().filter(|fp| fp.knee).count(), 1);
}

#[test]
fn successive_halving_finds_the_grids_fastest_point() {
    let evaluator = BenchEvaluator::new(Scale::Tiny, Scale::Tiny);
    let space = smoke_space();
    let grid = Explorer::new(&evaluator).explore(&space);
    let halved = Explorer::new(&evaluator)
        .strategy(Strategy::SuccessiveHalving { rungs: 1, eta: 2 })
        .explore(&space);
    assert!(grid.failed.is_empty(), "failures: {:?}", grid.failed);
    assert!(halved.rung_evaluations > 0);
    // Halving simulates fewer points at full fidelity than the grid.
    assert!(halved.evaluated.len() < grid.evaluated.len());
    for bench in ["queens", "cilksort", "bfsqueue"] {
        let g = grid.best_runtime(bench).expect("grid best");
        let h = halved.best_runtime(bench).expect("halving best");
        assert_eq!(g.point, h.point, "{bench}: strategies disagree");
        assert_eq!(g.measurement, h.measurement);
    }
}

#[test]
fn smoke_space_prunes_before_simulating() {
    let space = smoke_space();
    let partition = space.partition();
    // 27 points per benchmark, 3 benchmarks; 47 feasible after pruning.
    assert!(space.points().len() >= 24);
    assert_eq!(partition.feasible.len() + partition.pruned.len(), 81);
    assert_eq!(partition.feasible.len(), 47);
    // All three prune reasons appear.
    let reasons: Vec<String> = partition
        .pruned
        .iter()
        .map(|p| p.reason.to_string())
        .collect();
    assert!(reasons
        .iter()
        .any(|r| r.contains("power-of-two number of sets")));
    assert!(reasons.iter().any(|r| r.contains("LiteArch")));
    assert!(reasons.iter().any(|r| r.contains("fit")));
}

#[test]
fn shared_cache_makes_reruns_pure_hits_and_byte_identical() {
    let evaluator = BenchEvaluator::new(Scale::Tiny, Scale::Tiny);
    let space = small_space();

    let dir = std::env::temp_dir().join(format!("pxl_dse_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.jsonl");
    let _ = std::fs::remove_file(&path);

    let first = Explorer::new(&evaluator)
        .with_cache(ResultCache::open(&path).unwrap())
        .explore(&space);
    assert_eq!(first.cache_misses, 8);
    assert!(first.io_errors.is_empty(), "io: {:?}", first.io_errors);

    // A brand-new explorer over the persisted cache re-simulates nothing
    // and reproduces the front byte-for-byte.
    let second = Explorer::new(&evaluator)
        .with_cache(ResultCache::open(&path).unwrap())
        .explore(&space);
    assert_eq!(second.cache_misses, 0);
    assert_eq!(second.cache_hits, 8);
    assert_eq!(first.fronts_jsonl(), second.fronts_jsonl());
    assert_eq!(first.evaluated, second.evaluated);

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}
