//! Telemetry timeline gates: sampling is pure observation (off by
//! default, and arming it never changes the run), deterministic (two
//! same-seed runs serialize byte-identical timelines), wired into every
//! engine, and invisible to checkpoint/restore (a resumed run's timeline
//! matches an uninterrupted one exactly).

use parallelxl::apps::Scale;
use parallelxl::{execute, DesignPoint, PointArch, RunSpec, SessionStatus, SimSession, Snapshot};

fn base_spec() -> RunSpec {
    RunSpec::new(
        "uts",
        Scale::Tiny,
        DesignPoint::accel(PointArch::Flex, 2, 4),
    )
}

#[test]
fn telemetry_off_records_nothing_and_arming_it_changes_nothing() {
    let plain = execute(&base_spec()).unwrap().unwrap();
    assert!(
        plain.timeline.is_empty(),
        "no policy, no timeline (and no JSONL bytes)"
    );
    assert_eq!(plain.timeline.to_jsonl(), "");

    // Telemetry is observation: the armed run's measurement record is
    // byte-identical to the plain run's — the same property the golden
    // fixtures rely on with telemetry off.
    let sampled = execute(&base_spec().with_telemetry(500)).unwrap().unwrap();
    assert_eq!(sampled.to_jsonl(), plain.to_jsonl());
    assert!(!sampled.timeline.is_empty());
}

#[test]
fn same_seed_runs_produce_byte_identical_timelines() {
    let spec = base_spec().with_telemetry(500);
    let a = execute(&spec).unwrap().unwrap();
    let b = execute(&spec).unwrap().unwrap();
    let jsonl = a.timeline.to_jsonl();
    assert!(!jsonl.is_empty());
    assert_eq!(jsonl, b.timeline.to_jsonl());

    // Schema sanity: epochs count up from zero, windows tile the run, and
    // the fabric's four gauges ride on every sample.
    let samples = a.timeline.samples();
    let mut edge = 0;
    for (i, s) in samples.iter().enumerate() {
        assert_eq!(s.epoch, i as u64);
        assert_eq!(s.at.as_ps(), edge + s.window.as_ps(), "windows must tile");
        edge = s.at.as_ps();
        let names: Vec<&str> = s.gauges.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "events",
                "ready_tasks",
                "inflight_links",
                "pstore_occupancy"
            ]
        );
    }
    let total_tasks: u64 = samples
        .iter()
        .flat_map(|s| &s.counters)
        .filter(|c| c.name == "accel.tasks")
        .map(|c| c.delta)
        .sum();
    assert_eq!(
        total_tasks,
        a.metrics.get("accel.tasks"),
        "windowed deltas must sum to the end-of-run total"
    );
}

#[test]
fn every_engine_samples_its_own_gauges() {
    for (point, gauge) in [
        (DesignPoint::cpu(4), "pending_joins"),
        (DesignPoint::accel(PointArch::Lite, 1, 4), "rounds"),
        (
            DesignPoint::accel(PointArch::Central, 1, 4),
            "pstore_occupancy",
        ),
    ] {
        let spec = RunSpec::new("uts", Scale::Tiny, point).with_telemetry(500);
        let out = execute(&spec).unwrap().expect("uts maps to every engine");
        assert!(!out.timeline.is_empty(), "{spec:?}: no samples");
        assert!(
            out.timeline
                .samples()
                .iter()
                .all(|s| s.gauges.iter().any(|(n, _)| n == gauge)),
            "{spec:?}: every sample must carry the {gauge} gauge"
        );
    }
}

#[test]
fn restored_runs_keep_the_exact_timeline() {
    let spec = base_spec().with_telemetry(300);
    let reference = execute(&spec).unwrap().unwrap();
    let expected = reference.timeline.to_jsonl();
    assert!(!expected.is_empty());

    let mut session = SimSession::start(&spec).unwrap().unwrap();
    let clock = session.clock();
    let half = clock.time_to_cycles(reference.kernel).max(2) / 2;
    let SessionStatus::Paused { .. } = session
        .advance(Some(clock.cycles_to_time(half.max(1))))
        .unwrap()
    else {
        panic!("half the run must pause, not finish");
    };
    // Round-trip the envelope exactly as a checkpoint file would.
    let snap = Snapshot::from_json(&session.snapshot().to_json()).unwrap();
    let out = SimSession::resume(&spec, &snap)
        .unwrap()
        .unwrap()
        .finish()
        .unwrap();
    assert_eq!(
        out.timeline.to_jsonl(),
        expected,
        "a mid-run restore must not perturb the timeline"
    );
    assert_eq!(out.to_jsonl(), reference.to_jsonl());
}
