//! The cluster golden gate: a 1-chip [`ClusterConfig`] must be a perfect
//! no-op. Running any fixture workload with `cluster = Some(1 chip)` — on
//! the stock [`FlexEngine`] *or* the hierarchical [`HierEngine`] — must
//! reproduce the stock engine's bytes exactly: the same trace JSONL, the
//! same metric names and values, the same result and elapsed time, all
//! checked against the on-disk `tests/fixtures/` seeds.
//!
//! This is the invariant that lets the inter-chip link tier and the
//! hierarchical stealing policy live inside the shared fabric without
//! perturbing every single-chip run ever recorded.

use parallelxl::apps::{by_name, Scale};
use parallelxl::arch::{
    AccelConfig, AccelResult, CentralEngine, ClusterConfig, FlexEngine, HierEngine,
};
use parallelxl::sim::metrics::MetricKind;
use parallelxl::{FaultPlan, NetClass, Time};
use std::fmt::Write as _;
use std::path::PathBuf;

const TRACE_CAPACITY: usize = 1 << 16;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Serializes result/elapsed plus every registered counter (and histogram
/// summary) as stable `key=value` lines — the full observable surface of a
/// run. Any counter that exists in one run but not the other shows up as a
/// line diff, so a 1-chip engine that registered `link.*` metrics would
/// fail here even if their values were zero.
fn metrics_lines(out: &AccelResult) -> String {
    let mut lines = String::new();
    writeln!(lines, "result={}", out.result).unwrap();
    writeln!(lines, "elapsed_ps={}", out.elapsed.as_ps()).unwrap();
    let mut rows: Vec<String> = Vec::new();
    for (name, kind, value, hist) in out.metrics.iter() {
        match kind {
            MetricKind::Histogram => {
                rows.push(format!("hist:{name}.count={}", hist.count()));
                rows.push(format!("hist:{name}.sum={}", hist.sum()));
            }
            _ => rows.push(format!("{name}={value}")),
        }
    }
    rows.sort();
    for row in rows {
        lines.push_str(&row);
        lines.push('\n');
    }
    lines
}

fn flex_config(tiles: usize, pes: usize, plan: Option<FaultPlan>) -> AccelConfig {
    let mut cfg = AccelConfig::flex(tiles, pes);
    cfg.trace_capacity = TRACE_CAPACITY;
    cfg.fault_plan = plan;
    cfg
}

fn run_flex(cfg: AccelConfig, bench_name: &str) -> AccelResult {
    let bench = by_name(bench_name, Scale::Tiny).unwrap();
    let mut engine = FlexEngine::new(cfg, bench.profile());
    let inst = bench.flex(engine.mem_mut());
    let mut worker = inst.worker;
    let out = engine
        .run(worker.as_mut(), inst.root)
        .expect("run completes");
    bench
        .check(engine.memory(), out.result)
        .expect("run stays golden");
    out
}

fn run_hier(cfg: AccelConfig, bench_name: &str) -> AccelResult {
    let bench = by_name(bench_name, Scale::Tiny).unwrap();
    let mut engine = HierEngine::new(cfg, bench.profile());
    let inst = bench.flex(engine.mem_mut());
    let mut worker = inst.worker;
    let out = engine
        .run(worker.as_mut(), inst.root)
        .expect("run completes");
    bench
        .check(engine.memory(), out.result)
        .expect("run stays golden");
    out
}

fn assert_same_bytes(case: &str, engine: &str, stock: &AccelResult, got: &AccelResult) {
    let (want_trace, got_trace) = (stock.trace.to_jsonl(), got.trace.to_jsonl());
    if got_trace != want_trace {
        let diff = got_trace
            .lines()
            .zip(want_trace.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b);
        match diff {
            Some((i, (g, w))) => panic!(
                "{case}/{engine}: 1-chip cluster trace diverges at line {}:\n  got:  {g}\n  want: {w}",
                i + 1
            ),
            None => panic!(
                "{case}/{engine}: 1-chip cluster trace length changed ({} vs {})",
                got_trace.lines().count(),
                want_trace.lines().count()
            ),
        }
    }
    assert_eq!(
        metrics_lines(got),
        metrics_lines(stock),
        "{case}/{engine}: 1-chip cluster metrics diverged"
    );
}

/// The three Flex fixture seeds (including the mixed-fault one), each run
/// stock, then with a 1-chip cluster on FlexEngine, then with a 1-chip
/// cluster on HierEngine — all three must be byte-identical, and the stock
/// trace must still match the on-disk fixture so the gate is anchored to
/// the recorded seeds rather than to itself.
#[test]
fn one_chip_cluster_is_byte_identical_to_stock_flex() {
    let mixed = || {
        FaultPlan::new(0xFA_17)
            .kill_pe(5, Time::from_us(2))
            .stall_pe(1, Time::from_us(1), 400)
            .drop_messages(NetClass::Arg, Time::ZERO, Time::MAX, 400, 6)
            .drop_messages(NetClass::Task, Time::ZERO, Time::MAX, 400, 4)
            .duplicate_messages(NetClass::Arg, Time::ZERO, Time::MAX, 400, 6)
            .duplicate_messages(NetClass::Task, Time::ZERO, Time::MAX, 400, 4)
            .corrupt_pstore(0, Time::from_us(3), 0xFFFF)
    };
    let cases: [(&str, &str, usize, usize, Option<FaultPlan>); 3] = [
        ("queens_flex_1x4", "queens", 1, 4, None),
        ("uts_flex_2x4", "uts", 2, 4, None),
        (
            "queens_flex_2x4_mixed_faults",
            "queens",
            2,
            4,
            Some(mixed()),
        ),
    ];
    for (fixture, bench, tiles, pes, plan) in cases {
        let stock = run_flex(flex_config(tiles, pes, plan.clone()), bench);

        // Anchor: the stock run still reproduces the recorded fixture.
        let fixture_path = fixture_dir().join(format!("{fixture}.trace.jsonl"));
        let want = std::fs::read_to_string(&fixture_path).unwrap_or_else(|e| {
            panic!(
                "{fixture}: missing fixture {} ({e})",
                fixture_path.display()
            )
        });
        assert_eq!(
            stock.trace.to_jsonl(),
            want,
            "{fixture}: stock run no longer matches the recorded fixture"
        );

        // Gate: a 1-chip cluster is invisible on either engine.
        let mut clustered = flex_config(tiles, pes, plan.clone());
        clustered.cluster = Some(ClusterConfig::new(1));
        assert_same_bytes(fixture, "flex", &stock, &run_flex(clustered.clone(), bench));
        assert_same_bytes(fixture, "hier", &stock, &run_hier(clustered, bench));
    }
}

/// The flat-stealing 1-chip variant is equally invisible: `StealMode` only
/// matters across a chip boundary, which a 1-chip cluster does not have.
#[test]
fn one_chip_flat_cluster_is_also_invisible() {
    let stock = run_flex(flex_config(2, 4, None), "uts");
    let mut cfg = flex_config(2, 4, None);
    cfg.cluster = Some(ClusterConfig::new(1).flat());
    assert_same_bytes("uts_flex_2x4", "flex-flat", &stock, &run_flex(cfg, "uts"));
}

fn run_central(cfg: AccelConfig, bench_name: &str) -> AccelResult {
    let bench = by_name(bench_name, Scale::Tiny).unwrap();
    let mut engine = CentralEngine::new(cfg, bench.profile());
    let inst = bench.flex(engine.mem_mut());
    let mut worker = inst.worker;
    let out = engine
        .run(worker.as_mut(), inst.root)
        .expect("run completes");
    bench
        .check(engine.memory(), out.result)
        .expect("run stays golden");
    out
}

/// The centralized-queue ablation shares the fabric, so the 1-chip gate
/// must hold for it too: wrapping a stock central run in a 1-chip cluster
/// changes no trace or metric byte.
#[test]
fn one_chip_cluster_is_byte_identical_to_stock_central() {
    for bench in ["uts", "queens"] {
        let mut stock_cfg = AccelConfig::central(2, 4);
        stock_cfg.trace_capacity = TRACE_CAPACITY;
        let stock = run_central(stock_cfg.clone(), bench);
        let mut clustered = stock_cfg;
        clustered.cluster = Some(ClusterConfig::new(1));
        assert_same_bytes(
            &format!("{bench}_central_2x4"),
            "central",
            &stock,
            &run_central(clustered, bench),
        );
    }
}
