//! Fault-injection acceptance tests: a seeded [`FaultPlan`] must be
//! survivable (every Table II workload completes with golden results and
//! `fault.recovered == fault.injected`), replayable (same seed, byte-equal
//! trace), and diagnosable (the quiescence watchdog names the stalled unit
//! when recovery is impossible).

use parallelxl::apps::{by_name, suite, Scale};
use parallelxl::arch::{AccelConfig, FlexEngine};
use parallelxl::{AccelError, FaultPlan, NetClass, SimulationBuilder, Time, Workload};

/// Runs `bench` on FlexArch with `cfg`, returning the engine result.
fn run_flex_cfg(
    cfg: AccelConfig,
    bench: &dyn parallelxl::apps::Benchmark,
) -> parallelxl::AccelResult {
    let mut engine = SimulationBuilder::from_config(cfg, bench.profile())
        .build()
        .expect("valid config");
    let inst = bench.flex(engine.mem_mut());
    let mut worker = inst.worker;
    let out = engine
        .run(Workload::dynamic(worker.as_mut(), inst.root))
        .expect("faulted run completes");
    bench
        .check(engine.memory(), out.result)
        .expect("faulted run stays golden");
    out
}

/// Killing one PE early in the run leaves every Table II workload
/// golden-correct with results identical to the fault-free run, and every
/// injected fault accounted as recovered.
#[test]
fn single_pe_death_is_survived_by_every_benchmark() {
    for bench in suite(Scale::Tiny) {
        let name = bench.meta().name;
        let cfg = AccelConfig::flex(2, 4);

        let clean = run_flex_cfg(cfg.clone(), bench.as_ref());

        let mut faulted_cfg = cfg;
        faulted_cfg.fault_plan = Some(FaultPlan::new(7).kill_pe(2, Time::from_us(1)));
        let faulted = run_flex_cfg(faulted_cfg, bench.as_ref());

        assert_eq!(
            clean.result, faulted.result,
            "{name}: PE death changed the computed result"
        );
        let m = &faulted.metrics;
        assert_eq!(m.get("fault.pe_deaths"), 1, "{name}: death must fire");
        assert_eq!(
            m.get("fault.recovered"),
            m.get("fault.injected"),
            "{name}: every injected fault must be recovered"
        );
        assert_eq!(m.get("fault.unrecovered"), 0, "{name}: nothing unrecovered");
    }
}

/// A mixed plan (death + stall + drops + dups + corruption) still completes
/// with golden results and balanced recovery accounting.
#[test]
fn mixed_fault_plan_is_survived() {
    for name in ["queens", "uts", "knapsack"] {
        let bench = by_name(name, Scale::Tiny).expect("known benchmark");
        let mut cfg = AccelConfig::flex(2, 4);
        cfg.fault_plan = Some(
            FaultPlan::new(0xFA_17)
                .kill_pe(5, Time::from_us(2))
                .stall_pe(1, Time::from_us(1), 400)
                .drop_messages(NetClass::Arg, Time::ZERO, Time::MAX, 400, 6)
                .drop_messages(NetClass::Task, Time::ZERO, Time::MAX, 400, 4)
                .duplicate_messages(NetClass::Arg, Time::ZERO, Time::MAX, 400, 6)
                .duplicate_messages(NetClass::Task, Time::ZERO, Time::MAX, 400, 4)
                .corrupt_pstore(0, Time::from_us(3), 0xFFFF),
        );
        let out = run_flex_cfg(cfg, bench.as_ref());
        let m = &out.metrics;
        assert!(m.get("fault.injected") > 0, "{name}: plan must inject");
        assert_eq!(
            m.get("fault.recovered"),
            m.get("fault.injected"),
            "{name}: recovery accounting must balance"
        );
        assert_eq!(m.get("fault.unrecovered"), 0, "{name}: nothing unrecovered");
    }
}

/// Dropped messages are retransmitted with bounded backoff until delivered.
#[test]
fn dropped_messages_are_retried_to_delivery() {
    let bench = by_name("queens", Scale::Tiny).unwrap();
    let mut cfg = AccelConfig::flex(2, 4);
    cfg.fault_plan = Some(
        FaultPlan::new(11)
            .drop_messages(NetClass::Arg, Time::ZERO, Time::MAX, 1000, 8)
            .drop_messages(NetClass::Task, Time::ZERO, Time::MAX, 1000, 4),
    );
    let out = run_flex_cfg(cfg, bench.as_ref());
    let m = &out.metrics;
    assert_eq!(
        m.get("fault.dropped_args") + m.get("fault.dropped_tasks"),
        12
    );
    assert!(m.get("fault.retries") > 0, "drops must trigger resends");
    assert_eq!(m.get("fault.recovered"), m.get("fault.injected"));
    assert_eq!(m.get("fault.unrecovered"), 0);
}

/// Duplicated messages are discarded at the receiver exactly once each.
#[test]
fn duplicated_messages_are_discarded_at_the_receiver() {
    let bench = by_name("uts", Scale::Tiny).unwrap();
    let mut cfg = AccelConfig::flex(2, 4);
    cfg.fault_plan = Some(
        FaultPlan::new(23)
            .duplicate_messages(NetClass::Arg, Time::ZERO, Time::MAX, 1000, 8)
            .duplicate_messages(NetClass::Task, Time::ZERO, Time::MAX, 1000, 4),
    );
    let out = run_flex_cfg(cfg, bench.as_ref());
    let m = &out.metrics;
    let dups = m.get("fault.dup_args") + m.get("fault.dup_tasks");
    assert_eq!(dups, 12, "both duplication budgets must be spent");
    assert_eq!(
        m.get("fault.dup_discarded"),
        dups,
        "every duplicate must be discarded exactly once"
    );
    assert_eq!(m.get("fault.recovered"), m.get("fault.injected"));
}

/// P-Store corruption is detected and repaired by the ECC scrub on the
/// entry's next argument fill; the join still completes correctly.
#[test]
fn pstore_corruption_is_scrubbed() {
    let bench = by_name("queens", Scale::Tiny).unwrap();
    let mut cfg = AccelConfig::flex(1, 4);
    cfg.fault_plan = Some(
        FaultPlan::new(5)
            .corrupt_pstore(0, Time::from_us(1), 0xDEAD)
            .corrupt_pstore(0, Time::from_us(2), 0xBEEF),
    );
    let out = run_flex_cfg(cfg, bench.as_ref());
    let m = &out.metrics;
    // A corruption that finds no live entry is counted as skipped, never
    // silently lost. (A fault scheduled past the end of the run never
    // fires at all, so only a lower bound is portable across timings.)
    assert!(m.get("fault.pstore_hits") + m.get("fault.skipped") >= 1);
    // One scrub can repair several accumulated upsets of the same entry, so
    // repairs is bounded by hits but only required once any hit landed.
    let hits = m.get("fault.pstore_hits");
    assert!(m.get("fault.pstore_repairs") <= hits);
    assert!(hits == 0 || m.get("fault.pstore_repairs") >= 1);
    assert_eq!(m.get("fault.recovered"), m.get("fault.injected"));
}

/// An empty fault plan changes nothing: same result, same cycle count, same
/// metrics as a run with no plan armed at all.
#[test]
fn empty_fault_plan_is_bit_identical_to_no_plan() {
    let bench = by_name("spmvcrs", Scale::Tiny).unwrap();
    let clean = run_flex_cfg(AccelConfig::flex(1, 4), bench.as_ref());
    let mut cfg = AccelConfig::flex(1, 4);
    cfg.fault_plan = Some(FaultPlan::new(99));
    let armed = run_flex_cfg(cfg, bench.as_ref());
    assert_eq!(clean.result, armed.result);
    assert_eq!(clean.elapsed, armed.elapsed);
    assert_eq!(clean.metrics, armed.metrics);
}

/// When every argument message is dropped forever, retries exhaust and the
/// quiescence watchdog diagnoses the stall in bounded time, naming units.
#[test]
fn watchdog_diagnoses_an_unrecoverable_stall() {
    let bench = by_name("queens", Scale::Tiny).unwrap();
    let mut cfg = AccelConfig::flex(1, 4);
    cfg.watchdog_quiescence_cycles = 50_000;
    cfg.fault_plan =
        Some(FaultPlan::new(1).drop_messages(NetClass::Arg, Time::ZERO, Time::MAX, 1000, 0));
    let mut engine = FlexEngine::new(cfg, bench.profile());
    let inst = bench.flex(engine.mem_mut());
    let mut worker = inst.worker;
    let err = engine
        .run(worker.as_mut(), inst.root)
        .expect_err("total argument loss cannot complete");
    match err {
        AccelError::Stalled { idle_us, .. } => {
            let msg = err.to_string();
            assert!(
                msg.contains("watchdog"),
                "diagnosis names the watchdog: {msg}"
            );
            assert!(msg.contains("unit"), "diagnosis names a unit: {msg}");
            // 50k cycles at 200 MHz is 250 us; the watchdog must not wait
            // for the multi-second hard time limit.
            assert!(
                idle_us <= 1_000,
                "stall flagged in bounded time: {idle_us} us"
            );
        }
        other => panic!("expected a watchdog stall, got: {other}"),
    }
}

/// LiteArch statically reassigns a dead PE's chunks and pads past stall
/// windows; results stay golden and accounting balances.
#[test]
fn lite_survives_pe_death_and_stalls() {
    let bench = by_name("uts", Scale::Tiny).unwrap();
    let mut cfg = AccelConfig::lite(1, 4);
    cfg.fault_plan = Some(FaultPlan::new(3).kill_pe(1, Time::ZERO).stall_pe(
        2,
        Time::from_us(1),
        2_000,
    ));
    let mut engine = SimulationBuilder::from_config(cfg, bench.profile())
        .build()
        .expect("valid config");
    let inst = bench
        .lite(engine.mem_mut())
        .expect("uts has a Lite mapping");
    let mut worker = inst.worker;
    let mut driver = inst.driver;
    let out = engine
        .run(Workload::rounds(worker.as_mut(), driver.as_mut()))
        .expect("Lite survives the plan");
    bench
        .check(engine.memory(), out.result)
        .expect("Lite result stays golden");
    let m = &out.metrics;
    assert_eq!(m.get("fault.pe_deaths"), 1);
    assert_eq!(m.get("fault.pe_stalls"), 1);
    assert!(
        m.get("fault.rescued_tasks") > 0,
        "chunks must be reassigned"
    );
    assert_eq!(m.get("fault.recovered"), m.get("fault.injected"));
}

/// Killing every Lite PE leaves undispatchable work; the watchdog reports
/// the stall instead of spinning.
#[test]
fn lite_with_all_pes_dead_stalls_with_a_diagnosis() {
    let bench = by_name("uts", Scale::Tiny).unwrap();
    let mut cfg = AccelConfig::lite(1, 4);
    let mut plan = FaultPlan::new(4);
    for pe in 0..4 {
        plan = plan.kill_pe(pe, Time::ZERO);
    }
    cfg.fault_plan = Some(plan);
    let mut engine = SimulationBuilder::from_config(cfg, bench.profile())
        .build()
        .expect("valid config");
    let inst = bench
        .lite(engine.mem_mut())
        .expect("uts has a Lite mapping");
    let mut worker = inst.worker;
    let mut driver = inst.driver;
    let err = engine
        .run(Workload::rounds(worker.as_mut(), driver.as_mut()))
        .expect_err("no live PE can dispatch");
    match err {
        AccelError::Stalled { blocked_unit, .. } => {
            assert!(
                blocked_unit.is_some(),
                "diagnosis must name the unit holding undispatched work"
            );
        }
        other => panic!("expected a watchdog stall, got: {other}"),
    }
}

/// Invalid fault plans are rejected as recoverable configuration errors at
/// construction, through both the engine and builder entry points.
#[test]
fn invalid_fault_plans_are_rejected_up_front() {
    let profile = parallelxl::ExecProfile::scalar();

    // A plan referencing a PE outside the geometry.
    let mut cfg = AccelConfig::flex(1, 4);
    cfg.fault_plan = Some(FaultPlan::new(0).kill_pe(99, Time::ZERO));
    let err = FlexEngine::try_new(cfg, profile).expect_err("PE 99 does not exist");
    assert!(
        matches!(err, AccelError::InvalidConfig(_)),
        "expected InvalidConfig, got: {err}"
    );
    assert!(err.to_string().contains("PE 99"), "{err}");

    // LiteArch rejects network and P-Store faults it cannot model.
    let lite_plan = FaultPlan::new(0).drop_messages(NetClass::Arg, Time::ZERO, Time::MAX, 10, 0);
    let err = SimulationBuilder::from_config(AccelConfig::lite(1, 4), profile)
        .with_faults(lite_plan)
        .build()
        .expect_err("LiteArch has no routed networks");
    assert!(err.to_string().contains("LiteArch"), "{err}");

    // The CPU baseline has no modelled fault surface at all.
    let err = SimulationBuilder::cpu(2, profile)
        .with_faults(FaultPlan::new(0).kill_pe(0, Time::ZERO))
        .build()
        .expect_err("CPU target rejects fault plans");
    assert!(err.to_string().contains("accelerator"), "{err}");
}

/// Traced fault runs emit the fault/watchdog event vocabulary and the
/// injected/recovered events agree with the counters.
#[test]
fn fault_trace_events_match_the_counters() {
    let bench = by_name("queens", Scale::Tiny).unwrap();
    let mut cfg = AccelConfig::flex(2, 4);
    cfg.fault_plan = Some(
        FaultPlan::new(77)
            .kill_pe(3, Time::from_us(1))
            .drop_messages(NetClass::Arg, Time::ZERO, Time::MAX, 500, 4),
    );
    let mut engine = SimulationBuilder::from_config(cfg, bench.profile())
        .trace(1 << 16)
        .build()
        .expect("valid config");
    let inst = bench.flex(engine.mem_mut());
    let mut worker = inst.worker;
    let out = engine
        .run(Workload::dynamic(worker.as_mut(), inst.root))
        .expect("faulted run completes");
    let jsonl = out.trace.to_jsonl();
    let count = |kind: &str| {
        jsonl
            .lines()
            .filter(|l| l.contains(&format!("\"kind\":\"{kind}\"")))
            .count() as u64
    };
    assert_eq!(count("fault.injected"), out.metrics.get("fault.injected"));
    assert_eq!(count("fault.recovered"), out.metrics.get("fault.recovered"));
    assert_eq!(count("watchdog.stall"), 0, "this plan is survivable");
}
