//! Determinism and theoretical-bound checks on the simulated architecture.

use parallelxl::apps::{by_name, suite, Scale};
use parallelxl::arch::{AccelConfig, FlexEngine};
use parallelxl::model::SerialExecutor;
use pxl_bench::{geometry, run_cpu, run_flex};

/// Same configuration and seed ⇒ bit-identical simulated time and stats.
#[test]
fn simulations_are_deterministic() {
    for name in ["uts", "quicksort", "bfsqueue"] {
        let bench = by_name(name, Scale::Tiny).unwrap();
        let a = run_flex(bench.as_ref(), 8, None);
        let b = run_flex(bench.as_ref(), 8, None);
        assert_eq!(
            a.kernel, b.kernel,
            "{name}: flex elapsed must be reproducible"
        );
        assert_eq!(
            a.metrics.get("accel.steal_attempts"),
            b.metrics.get("accel.steal_attempts"),
            "{name}: steal traffic must be reproducible"
        );
        let c = run_cpu(bench.as_ref(), 4);
        let d = run_cpu(bench.as_ref(), 4);
        assert_eq!(
            c.kernel, d.kernel,
            "{name}: cpu elapsed must be reproducible"
        );
    }
}

/// The work-stealing space bound (Section II-C): the parallel execution's
/// task storage must stay within S1 * P, where S1 is the serial executor's
/// requirement.
#[test]
fn space_bound_holds_across_benchmarks() {
    for bench in suite(Scale::Tiny) {
        let name = bench.meta().name;
        let mut serial = SerialExecutor::new();
        let inst = bench.flex(serial.mem_mut());
        let mut worker = inst.worker;
        serial
            .run(worker.as_mut(), inst.root)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let s1 = serial.stats().s1() as u64;

        for pes in [4usize, 16] {
            let out = run_flex(bench.as_ref(), pes, None);
            let s_p =
                out.metrics.get("accel.queue_peak_sum") + out.metrics.get("accel.pstore_peak_sum");
            // nw's root builds the whole block graph up front, so its S1
            // already includes every pending block; other benchmarks unfold
            // dynamically.
            assert!(
                s_p <= s1 * pes as u64,
                "{name}: S_{pes} = {s_p} exceeds S1*P = {}",
                s1 * pes as u64
            );
        }
    }
}

/// More PEs must never make a scalable benchmark catastrophically slower.
#[test]
fn adding_pes_is_not_catastrophic() {
    for name in ["queens", "cilksort", "bbgemm"] {
        let bench = by_name(name, Scale::Small).unwrap();
        let t1 = run_flex(bench.as_ref(), 1, None).seconds();
        let t16 = run_flex(bench.as_ref(), 16, None).seconds();
        assert!(
            t16 < t1 * 1.10,
            "{name}: 16 PEs ({t16:.6}s) regressed vs 1 PE ({t1:.6}s)"
        );
    }
}

/// The paper's geometry: multi-PE accelerators are built from 4-PE tiles.
#[test]
fn sweep_geometries_validate() {
    for pes in [1usize, 2, 4, 8, 16, 32] {
        let (tiles, per_tile) = geometry(pes);
        let cfg = AccelConfig::flex(tiles, per_tile);
        cfg.validate().unwrap();
        assert_eq!(cfg.num_pes(), pes);
    }
}

/// Queue overflow is detected (not silently dropped) when the task queue is
/// sized below the space bound.
#[test]
fn undersized_queues_fail_loudly() {
    let bench = by_name("uts", Scale::Tiny).unwrap();
    let mut cfg = AccelConfig::flex(1, 2);
    cfg.task_queue_entries = 2;
    let mut engine = FlexEngine::new(cfg, bench.profile());
    let inst = bench.flex(engine.mem_mut());
    let mut worker = inst.worker;
    let err = engine.run(worker.as_mut(), inst.root).unwrap_err();
    assert!(
        matches!(
            err,
            parallelxl::arch::AccelError::QueueFull { .. }
                | parallelxl::arch::AccelError::PStoreFull { .. }
        ),
        "got {err}"
    );
}

/// The paper's knapsack observation (Section V-D1): the LiteArch variant
/// "sacrifices algorithmic efficiency in order to map to parallel-for" —
/// level-synchronous rounds see stale pruning bounds and pay a barrier per
/// item level, so at scale the Lite knapsack is slower in absolute terms
/// even though both variants scale well (Table IV vs Fig. 7).
#[test]
fn knapsack_lite_is_absolutely_slower_than_flex_at_scale() {
    let bench = by_name("knapsack", Scale::Paper).unwrap();
    let flex = run_flex(bench.as_ref(), 32, None);
    let lite = pxl_bench::run_lite(bench.as_ref(), 32, None).unwrap();
    assert!(
        lite.seconds() > flex.seconds(),
        "lite ({}) must be slower than flex ({}) at 32 PEs",
        lite.whole,
        flex.whole
    );
}

/// Raising the software runtime's steal cost must slow the multicore CPU on
/// a steal-heavy workload — the knob that separates hardware from software
/// work stealing.
#[test]
fn software_steal_cost_hurts_cpu_scaling() {
    use parallelxl::cpu::{CpuEngine, SoftwareCosts};
    use parallelxl::sim::config::{CpuCoreParams, MemoryConfig};

    let bench = by_name("uts", Scale::Tiny).unwrap();
    let run = |steal_instrs: u64| {
        let mut engine = CpuEngine::with_params(
            8,
            bench.profile(),
            CpuCoreParams::micro2018(),
            MemoryConfig::micro2018(),
            SoftwareCosts {
                steal_attempt_instrs: steal_instrs,
                ..SoftwareCosts::default()
            },
        );
        let inst = bench.flex(engine.mem_mut());
        let mut worker = inst.worker;
        let out = engine.run(worker.as_mut(), inst.root).unwrap();
        bench.check(engine.memory(), out.result).unwrap();
        out.elapsed
    };
    let cheap = run(50);
    let expensive = run(3_000);
    assert!(
        expensive > cheap,
        "3000-instruction steals ({expensive}) must be slower than 50 ({cheap})"
    );
}
