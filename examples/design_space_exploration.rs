//! Design-space exploration with the ParallelXL design methodology
//! (Section IV): elaborate accelerator designs from template parameters,
//! estimate their FPGA resources, check device fitting, and simulate a
//! cache-size sweep — "without rewriting any code".
//!
//! Run with: `cargo run --release --example design_space_exploration`

use parallelxl::apps::{by_name, Scale};
use parallelxl::arch::ArchKind;
use parallelxl::cost::FpgaDevice;
use parallelxl::flow::{sweep_cache_sizes, sweep_pe_counts, AcceleratorBuilder};
use parallelxl::{Axis, Explorer, PointArch, SearchSpace};
use pxl_bench::{run_flex, run_flex_with_config, BenchEvaluator};

fn main() {
    // 1. Elaborate one design and inspect the resource estimate.
    let design = AcceleratorBuilder::new("stencil2d")
        .tiles(4)
        .pes_per_tile(4)
        .cache_kb(16)
        .build()
        .expect("valid design");
    let res = design.resources.as_ref().expect("known benchmark");
    println!(
        "stencil2d FlexArch, 16 PEs, 16 KB caches:\n  per PE  : {:>6} LUT {:>6} FF {:>3} DSP {:>3} BRAM",
        res.pe.lut, res.pe.ff, res.pe.dsp, res.pe.bram18
    );
    println!(
        "  per tile: {:>6} LUT {:>6} FF {:>3} DSP {:>3} BRAM",
        res.tile.lut, res.tile.ff, res.tile.dsp, res.tile.bram18
    );
    for (device, tiles) in &design.device_fits {
        println!("  {device}: fits {tiles} tiles");
    }

    // 2. Sweep PE counts and simulate each design point.
    println!("\nPE sweep (simulated whole-program time):");
    let bench = by_name("stencil2d", Scale::Small).expect("registered");
    for d in sweep_pe_counts("stencil2d", ArchKind::Flex, &[1, 4, 16]).expect("sweep") {
        let pes = d.config.num_pes();
        let out = run_flex_with_config(bench.as_ref(), d.config, "flex");
        println!("  {:>2} PEs -> {}", pes, out.whole);
    }

    // 3. Sweep the tile cache (the paper's Fig. 9 experiment, one point per
    //    capacity) and watch BRAM cost trade against performance.
    println!("\nCache sweep at 16 PEs:");
    for (kb, d) in [4usize, 8, 16, 32]
        .into_iter()
        .zip(sweep_cache_sizes("stencil2d", &[4, 8, 16, 32]).expect("sweep"))
    {
        let bram = d.resources.as_ref().expect("known benchmark").tile.bram18;
        let out = run_flex(bench.as_ref(), 16, Some(kb * 1024));
        println!("  {kb:>2} KB caches ({bram:>3} BRAM/tile) -> {}", out.whole);
    }

    // 4. Cross all the axes at once with the DSE engine (pxl-dse): prune
    //    infeasible points against the low-cost device, evaluate the rest
    //    in parallel, and read back the Pareto front over runtime, energy,
    //    and area. See docs/dse.md.
    let space = SearchSpace::new()
        .benchmarks(["stencil2d"])
        .archs([PointArch::Flex, PointArch::Lite, PointArch::Cpu])
        .tiles(Axis::list([1, 2, 4]))
        .pes_per_tile(Axis::fixed(4))
        .cache_kb(Axis::list([8, 16, 32]))
        .device(FpgaDevice::artix_7a75t());
    let evaluator = BenchEvaluator::new(Scale::Small, Scale::Tiny);
    let outcome = Explorer::new(&evaluator).explore(&space);
    println!("\n{}", outcome.report_markdown());
}
