//! Quickstart: the paper's running Fibonacci example (Fig. 5), expressed as
//! a ParallelXL worker and executed on a simulated FlexArch accelerator and
//! the Cilk-style CPU baseline — everything through the `parallelxl` facade
//! and the unified [`Engine`] API.
//!
//! Run with: `cargo run --release --example quickstart`

use parallelxl::{
    AccelConfig, Continuation, ExecProfile, SerialExecutor, SimulationBuilder, Task, TaskContext,
    TaskTypeId, Worker, Workload,
};

const FIB: TaskTypeId = TaskTypeId(0);
const SUM: TaskTypeId = TaskTypeId(1);

/// The Rust analogue of the paper's C++ worker description (CPPWD): one
/// homogeneous worker dispatching on the task type.
struct FibWorker;

impl Worker for FibWorker {
    fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
        let k = task.k;
        if task.ty == FIB {
            let n = task.args[0];
            ctx.compute(2);
            if n < 2 {
                // Base case: return the value through the continuation.
                ctx.send_arg(k, n);
            } else {
                // create successor task (join counter = 2) ...
                let kk = ctx.make_successor(SUM, k, 2);
                // ... then spawn the children, each pointed at its own
                // argument slot of the successor.
                ctx.spawn(Task::new(FIB, kk.with_slot(1), &[n - 2]));
                ctx.spawn(Task::new(FIB, kk.with_slot(0), &[n - 1]));
            }
        } else {
            ctx.compute(1);
            ctx.send_arg(k, task.args[0] + task.args[1]);
        }
    }
}

fn main() {
    let n = 20;
    let root = || Task::new(FIB, Continuation::host(0), &[n]);

    // Ground truth on the single-PE reference scheduler.
    let mut serial = SerialExecutor::new();
    let expected = serial.run(&mut FibWorker, root()).expect("serial run");
    println!(
        "fib({n}) = {expected}  (serial reference, S1 = {} tasks)",
        serial.stats().s1()
    );

    // FlexArch accelerators of growing size, built through the one entry
    // point every engine shares.
    for (tiles, pes) in [(1, 1), (1, 4), (2, 4), (4, 4)] {
        let mut engine =
            SimulationBuilder::from_config(AccelConfig::flex(tiles, pes), ExecProfile::scalar())
                .build()
                .expect("valid flex config");
        let out = engine
            .run(Workload::dynamic(&mut FibWorker, root()))
            .expect("flex run");
        assert_eq!(out.result, expected);
        println!(
            "FlexArch {:2} PEs: {:>12}  ({} tasks, {} successful steals)",
            tiles * pes,
            out.elapsed.to_string(),
            out.metrics.get("accel.tasks"),
            out.metrics.get("accel.steal_hits"),
        );
    }

    // The software baseline: same worker, same workload shape, software
    // runtime costs.
    for cores in [1, 4, 8] {
        let mut cpu = SimulationBuilder::cpu(cores, ExecProfile::scalar())
            .build()
            .expect("valid cpu config");
        let out = cpu
            .run(Workload::dynamic(&mut FibWorker, root()))
            .expect("cpu run");
        assert_eq!(out.result, expected);
        println!(
            "CPU  {cores:2} cores: {:>12}  ({} tasks, {} successful steals)",
            out.elapsed.to_string(),
            out.metrics.get("cpu.tasks"),
            out.metrics.get("cpu.steal_hits"),
        );
    }
}
