//! Vector-vector add: the paper's first task-graph example (Fig. 2a).
//!
//! A 256-element vector sum decomposed into 64-element chunks with the
//! `parallel_for` helper — "in case where the source vectors are very long,
//! it is more efficient to use recursive decomposition", which is exactly
//! what [`parallelxl::model::ParallelFor`] does. Runs on FlexArch and
//! renders the recorded task graph so the recursive split/join structure of
//! Fig. 2(a) is visible.
//!
//! Run with: `cargo run --release --example vector_add`

use parallelxl::arch::{AccelConfig, FlexEngine};
use parallelxl::model::trace::TracingExecutor;
use parallelxl::model::{
    Continuation, ExecProfile, ParallelFor, Task, TaskContext, TaskTypeId, Worker,
};

const SPLIT: TaskTypeId = TaskTypeId(0);
const JOIN: TaskTypeId = TaskTypeId(1);

const N: u64 = 256;
const CHUNK: u64 = 64;
const A: u64 = 0x1000;
const B: u64 = 0x2000;
const C: u64 = 0x3000;

struct VvaddWorker {
    pf: ParallelFor,
}

impl Worker for VvaddWorker {
    fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
        let pf = self.pf;
        let handled = pf.step(task, ctx, |ctx, lo, hi| {
            // Stream both source chunks in, add, stream the result out.
            ctx.dma_read(A + 4 * lo, (hi - lo) * 4);
            ctx.dma_read(B + 4 * lo, (hi - lo) * 4);
            ctx.compute(hi - lo);
            for i in lo..hi {
                let a = ctx.mem().read_u32(A + 4 * i);
                let b = ctx.mem().read_u32(B + 4 * i);
                ctx.mem().write_u32(C + 4 * i, a.wrapping_add(b));
            }
            ctx.dma_write(C + 4 * lo, (hi - lo) * 4);
            hi - lo
        });
        assert!(handled, "only parallel_for tasks exist here");
    }
}

fn fill_inputs(mem: &mut parallelxl::mem::Memory) {
    for i in 0..N {
        mem.write_u32(A + 4 * i, i as u32);
        mem.write_u32(B + 4 * i, (1000 + i) as u32);
    }
}

fn main() {
    let pf = ParallelFor::new(SPLIT, JOIN, CHUNK);

    // Run on a 4-PE FlexArch accelerator.
    let mut engine = FlexEngine::new(AccelConfig::flex(1, 4), ExecProfile::new(8.0, 4.0));
    fill_inputs(engine.mem_mut());
    let out = engine
        .run(
            &mut VvaddWorker { pf },
            pf.root_task(0, N, Continuation::host(0)),
        )
        .expect("vvadd runs");
    assert_eq!(out.result, N, "reduction counts every element");
    for i in 0..N {
        assert_eq!(
            engine.memory().read_u32(C + 4 * i),
            (1000 + 2 * i) as u32,
            "c[{i}]"
        );
    }
    println!(
        "vvadd({N}) on 4 PEs: {} ({} tasks, {} steals)",
        out.elapsed,
        out.metrics.get("accel.tasks"),
        out.metrics.get("accel.steal_hits")
    );

    // Show the Fig. 2(a) task graph: chunks under a recursive split tree.
    let mut tracer = TracingExecutor::new();
    fill_inputs(tracer.mem_mut());
    let (_, graph) = tracer
        .run(
            &mut VvaddWorker { pf },
            pf.root_task(0, N, Continuation::host(0)),
        )
        .expect("trace runs");
    println!(
        "task graph: {} nodes, critical path {} (vs {} chunk tasks)",
        graph.node_count(),
        graph.critical_path_len(),
        N / CHUNK
    );
    println!(
        "{}",
        graph.to_dot(&|t| if t == SPLIT {
            "vvadd".into()
        } else {
            "S".into()
        })
    );
}
