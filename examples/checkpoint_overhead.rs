//! Measures the host-side cost of checkpointing: wall-clock overhead and
//! snapshot size for a run that pauses, serializes and restores at every
//! epoch boundary versus the same run uninterrupted.
//!
//! The simulated result is byte-identical by construction (the
//! determinism gate in tests/checkpoint_restore.rs enforces it); what
//! this example quantifies is the *price* of durability — engine state
//! serialization, envelope checksumming, and session rebuild — as a
//! function of the checkpoint epoch. Numbers land in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release --example checkpoint_overhead
//! ```

use std::time::Instant;

use parallelxl::apps::Scale;
use parallelxl::{execute, DesignPoint, PointArch, RunSpec, SessionStatus, SimSession, Snapshot};

fn main() {
    let points = [
        ("flex", DesignPoint::accel(PointArch::Flex, 2, 4)),
        ("lite", DesignPoint::accel(PointArch::Lite, 1, 4)),
        ("cpu", DesignPoint::cpu(4)),
    ];
    println!(
        "| bench | engine | checkpoints | snapshot KB | plain ms | checkpointed ms | ms/checkpoint |"
    );
    println!("|---|---|---|---|---|---|---|");
    for (engine, point) in &points {
        for bench in ["uts", "queens"] {
            let spec = RunSpec::new(bench, Scale::Small, point.clone());
            let t0 = Instant::now();
            let Some(reference) = execute(&spec).expect("spec runs") else {
                continue;
            };
            let plain = t0.elapsed();
            let expected = reference.to_jsonl();

            // Checkpoint every 1/16th of the run, restoring from the
            // serialized envelope each time — the worst case the server
            // can hit (every leg preempted).
            let session = SimSession::start(&spec).unwrap().unwrap();
            let clock = session.clock();
            let total = clock.time_to_cycles(reference.kernel).max(16);
            let epoch = total / 16;
            let t0 = Instant::now();
            let mut session = session;
            let mut boundary = epoch;
            let mut checkpoints = 0u64;
            let mut snapshot_bytes = 0usize;
            let out = loop {
                match session
                    .advance(Some(clock.cycles_to_time(boundary)))
                    .unwrap()
                {
                    SessionStatus::Finished(out) => break out,
                    SessionStatus::Paused { .. } => {
                        let text = session.snapshot().to_json();
                        snapshot_bytes = snapshot_bytes.max(text.len());
                        let snap = Snapshot::from_json(&text).unwrap();
                        session = SimSession::resume(&spec, &snap).unwrap().unwrap();
                        checkpoints += 1;
                        boundary += epoch;
                    }
                }
            };
            let checkpointed = t0.elapsed();
            assert_eq!(out.to_jsonl(), expected, "restore must be invisible");

            // The meaningful cost is per checkpoint (serialize + checksum
            // + rebuild): it amortizes over the epoch, so long runs with
            // sparse epochs see a negligible relative overhead even
            // though a toy run checkpointed 16 times does not.
            let per_checkpoint =
                (checkpointed.saturating_sub(plain)).as_secs_f64() / (checkpoints.max(1) as f64);
            println!(
                "| {bench} | {engine} | {checkpoints} | {:.1} | {:.1} | {:.1} | {:.1} |",
                snapshot_bytes as f64 / 1024.0,
                plain.as_secs_f64() * 1e3,
                checkpointed.as_secs_f64() * 1e3,
                per_checkpoint * 1e3
            );
        }
    }
}
