//! Renders the dynamic task graph of the paper's Fibonacci example
//! (Fig. 2b) as Graphviz DOT, and prints graph statistics for the
//! benchmarks' graphs — the critical path that bounds speedup, and the
//! ratio of work to span.
//!
//! Run with: `cargo run --release --example task_graph > fib.dot`
//! then: `dot -Tpng fib.dot -o fib.png`

use parallelxl::apps::{by_name, Scale};
use parallelxl::model::trace::TracingExecutor;
use parallelxl::model::{Continuation, Task, TaskContext, TaskTypeId, Worker};

const FIB: TaskTypeId = TaskTypeId(0);
const SUM: TaskTypeId = TaskTypeId(1);

struct FibWorker;
impl Worker for FibWorker {
    fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
        let k = task.k;
        if task.ty == FIB {
            let n = task.args[0];
            if n < 2 {
                ctx.send_arg(k, n);
            } else {
                let kk = ctx.make_successor(SUM, k, 2);
                ctx.spawn(Task::new(FIB, kk.with_slot(1), &[n - 2]));
                ctx.spawn(Task::new(FIB, kk.with_slot(0), &[n - 1]));
            }
        } else {
            ctx.send_arg(k, task.args[0] + task.args[1]);
        }
    }
}

fn main() {
    // The paper's Fig. 2(b): fib(4) as a dynamic task graph.
    let mut tracer = TracingExecutor::new();
    let (result, graph) = tracer
        .run(&mut FibWorker, Task::new(FIB, Continuation::host(0), &[4]))
        .expect("fib(4) runs");
    eprintln!(
        "fib(4) = {result}: {} nodes, {} edges, critical path {}",
        graph.node_count(),
        graph.edge_count(),
        graph.critical_path_len()
    );
    println!(
        "{}",
        graph.to_dot(&|t| if t == FIB { "fib".into() } else { "S".into() })
    );

    // Work/span summary for each benchmark's real task graph.
    eprintln!("\nbenchmark    nodes  critical-path  parallelism");
    for name in ["nw", "quicksort", "queens", "uts"] {
        let bench = by_name(name, Scale::Tiny).expect("registered");
        let mut tracer = TracingExecutor::new();
        let inst = bench.flex(tracer.mem_mut());
        let mut worker = inst.worker;
        let (_, g) = tracer.run(worker.as_mut(), inst.root).expect("runs");
        let cp = g.critical_path_len();
        eprintln!(
            "{name:12} {:>5}  {:>13}  {:>10.1}",
            g.node_count(),
            cp,
            g.node_count() as f64 / cp as f64
        );
    }
}
