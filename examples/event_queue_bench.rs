//! Micro-benchmark: the slab-backed two-lane [`EventQueue`] against the
//! plain binary-heap event queue it replaced, at fabric-realistic push/pop
//! mixes. The reference carries its payload inside each heap node — the old
//! layout, where every sift moved the full event — while the new queue
//! moves only 24-byte `(time, seq, slot)` index entries and parks payloads
//! in a free-list slab.
//!
//! Hand-rolled timing loops (no external harness dependency, so the
//! workspace builds offline): each case runs a warmup batch, then reports
//! mean wall time per iteration, same idiom as `pxl-bench`'s microbench.
//!
//! Run with: `cargo run --release --example event_queue_bench`

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::hint::black_box;
use std::time::Instant;

use parallelxl::sim::{EventQueue, Time, XorShift64};

/// Stand-in for the fabric's event payload at its pre-refactor size: the
/// old `Event` enum inlined a full task (`#[allow(clippy::large_enum_variant)]`
/// marked the cost), so heap sifts moved this much with every swap.
#[derive(Debug, Clone, Copy)]
struct Payload([u64; 8]);

/// The old layout: one `BinaryHeap` node per event, payload inline,
/// `(time, seq)` min-order with FIFO tie-breaking — behaviourally identical
/// to [`EventQueue`], kept here as the baseline.
struct HeapNode {
    when: Time,
    seq: u64,
    payload: Payload,
}

impl PartialEq for HeapNode {
    fn eq(&self, other: &Self) -> bool {
        (self.when, self.seq) == (other.when, other.seq)
    }
}
impl Eq for HeapNode {}
impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.when, other.seq).cmp(&(self.when, self.seq))
    }
}
impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Default)]
struct HeapQueue {
    heap: BinaryHeap<HeapNode>,
    next_seq: u64,
}

impl HeapQueue {
    fn push(&mut self, when: Time, payload: Payload) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapNode { when, seq, payload });
    }

    fn pop(&mut self) -> Option<(Time, Payload)> {
        self.heap.pop().map(|n| (n.when, n.payload))
    }
}

/// Times `iters` calls of `f` after a warmup batch and prints ns/iter.
fn bench(name: &str, iters: u64, mut f: impl FnMut()) {
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total = start.elapsed();
    println!(
        "{name:<40} {:>12.1} ns/iter ({iters} iters)",
        total.as_nanos() as f64 / iters as f64
    );
}

/// The fabric's steady state: ~60 pending events (16 PEs plus in-flight
/// memory and steal traffic), each pop scheduling a successor a few cycles
/// out. Deltas stay inside the near-lane bucket window.
fn dispatch_delta(rng: &mut XorShift64) -> u64 {
    5_000 + (rng.next_u64() % 16) * 5_000 // 1..=16 cycles at 5000 ps/cycle
}

/// Occasional long-horizon event (watchdog, timed fault): far beyond the
/// 256-bucket x 8192 ps near window, so it exercises the overflow heap lane.
fn horizon_delta(rng: &mut XorShift64) -> u64 {
    (256 << 13) + rng.next_u64() % (1 << 28)
}

fn main() {
    const PENDING: usize = 60;
    const MIXES: [(&str, u64); 2] = [("dispatch", 0), ("dispatch+horizon", 50)];

    for (mix, horizon_every) in MIXES {
        // New queue: slab payloads, index-only ordering.
        let mut rng = XorShift64::new(0x5eed);
        let mut q = EventQueue::new();
        let mut now = Time::ZERO;
        for i in 0..PENDING {
            q.push(
                now + Time::from_ps(dispatch_delta(&mut rng)),
                Payload([i as u64; 8]),
            );
        }
        let mut n = 0u64;
        bench(&format!("event_queue/{mix}"), 2_000_000, || {
            let (t, p) = q.pop().expect("steady state is non-empty");
            now = t;
            n += 1;
            let delta = if horizon_every != 0 && n.is_multiple_of(horizon_every) {
                horizon_delta(&mut rng)
            } else {
                dispatch_delta(&mut rng)
            };
            q.push(now + Time::from_ps(delta), black_box(p));
        });

        // Old layout: payloads ride the heap nodes.
        let mut rng = XorShift64::new(0x5eed);
        let mut q = HeapQueue::default();
        let mut now = Time::ZERO;
        for i in 0..PENDING {
            q.push(
                now + Time::from_ps(dispatch_delta(&mut rng)),
                Payload([i as u64; 8]),
            );
        }
        let mut n = 0u64;
        bench(&format!("binary_heap/{mix}"), 2_000_000, || {
            let (t, p) = q.pop().expect("steady state is non-empty");
            now = t;
            n += 1;
            let delta = if horizon_every != 0 && n.is_multiple_of(horizon_every) {
                horizon_delta(&mut rng)
            } else {
                dispatch_delta(&mut rng)
            };
            q.push(now + Time::from_ps(delta), black_box(p));
        });
    }

    // Burst fill + drain: checkpoint restore and run teardown do this.
    bench("event_queue/fill_drain_1k", 2_000, || {
        let mut rng = XorShift64::new(1);
        let mut q = EventQueue::new();
        for i in 0..1_000u64 {
            q.push(Time::from_ps(rng.next_u64() % (1 << 21)), Payload([i; 8]));
        }
        while let Some((_, p)) = q.pop() {
            black_box(p.0);
        }
    });
    bench("binary_heap/fill_drain_1k", 2_000, || {
        let mut rng = XorShift64::new(1);
        let mut q = HeapQueue::default();
        for i in 0..1_000u64 {
            q.push(Time::from_ps(rng.next_u64() % (1 << 21)), Payload([i; 8]));
        }
        while let Some((_, p)) = q.pop() {
            black_box(p.0);
        }
    });
}
