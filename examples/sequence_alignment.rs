//! Sequence alignment: the paper's motivating *general task-parallel*
//! pattern (Fig. 2c). Runs the `nw` benchmark — Needleman-Wunsch with a
//! blocked wavefront task graph built through explicit continuation
//! passing — on FlexArch, LiteArch and the CPU baseline, and prints the
//! comparison the paper's evaluation makes.
//!
//! Run with: `cargo run --release --example sequence_alignment`

use parallelxl::apps::{by_name, Scale};
use pxl_bench::{run_cpu, run_flex, run_lite};

fn main() {
    let bench = by_name("nw", Scale::Small).expect("nw registered");
    let meta = bench.meta();
    println!(
        "{} ({}, {} pattern, {} memory intensity)\n",
        meta.name, meta.source, meta.approach, meta.mem_intensity
    );

    let cpu1 = run_cpu(bench.as_ref(), 1);
    let cpu8 = run_cpu(bench.as_ref(), 8);
    println!("CPU 1 core : {:>12}", cpu1.whole.to_string());
    println!(
        "CPU 8 cores: {:>12}  ({:.2}x)",
        cpu8.whole.to_string(),
        cpu1.seconds() / cpu8.seconds()
    );

    for pes in [1usize, 4, 16, 32] {
        let out = run_flex(bench.as_ref(), pes, None);
        println!(
            "FlexArch {pes:2} PEs: {:>12}  ({:.2}x vs 1 core; {} block tasks, {} steals)",
            out.whole.to_string(),
            cpu1.seconds() / out.seconds(),
            out.metrics.get("accel.tasks"),
            out.metrics.get("accel.steal_hits"),
        );
    }

    // The LiteArch mapping replaces the P-Store dependence tracking with
    // one anti-diagonal of blocks per host-synchronized round.
    let lite = run_lite(bench.as_ref(), 16, None).expect("nw has a Lite variant");
    println!(
        "LiteArch 16 PEs: {:>12}  ({:.2}x vs 1 core; {} rounds)",
        lite.whole.to_string(),
        cpu1.seconds() / lite.seconds(),
        lite.metrics.get("lite.rounds"),
    );
}
