//! A user-defined [`SchedulingPolicy`] driving the execution fabric end to
//! end.
//!
//! The fabric (`pxl-arch/src/fabric.rs`) owns the task model, P-Store
//! joins, memory timing, faults, watchdog, metrics and tracing; a policy
//! owns only *where ready tasks live* and *how idle PEs acquire them*.
//! This example plugs in a deterministic **ring-sweep** policy — an idle PE
//! probes its right neighbor first, then sweeps the ring (including the
//! host interface block) — in place of FlexArch's LFSR victim selection,
//! and runs the paper's Fibonacci workload through it unchanged.
//!
//! Run with: `cargo run --release --example custom_policy`

use parallelxl::arch::deque::TaskDeque;
use parallelxl::{
    AccelConfig, ArchKind, Continuation, EngineKind, ExecProfile, FabricEngine, FlexEngine,
    SchedulingPolicy, Task, TaskContext, TaskTypeId, Time, Worker,
};
use std::collections::VecDeque;

/// Ready-task storage and acquisition with ring-sweep victim selection:
/// per-PE deques like FlexArch, but an idle PE's steal requests walk the
/// ring `pe+1, pe+2, …, IF, …` instead of following an LFSR.
#[derive(Debug)]
struct RingPolicy {
    deques: Vec<TaskDeque>,
    host_queue: VecDeque<Task>,
    /// Per-PE ring cursor: offset of the next victim to probe.
    cursor: Vec<usize>,
    num_pes: usize,
}

impl SchedulingPolicy for RingPolicy {
    fn for_config(cfg: &AccelConfig) -> Self {
        let num_pes = cfg.num_pes();
        RingPolicy {
            deques: (0..num_pes)
                .map(|_| TaskDeque::new(cfg.task_queue_entries))
                .collect(),
            host_queue: VecDeque::new(),
            cursor: vec![1; num_pes],
            num_pes,
        }
    }

    // A custom policy reports through the unified API as the engine family
    // it is a variant of — this one is a FlexArch variant, so it runs under
    // `AccelConfig::flex` configurations.
    fn kind(&self) -> EngineKind {
        EngineKind::Flex
    }

    fn arch(&self) -> ArchKind {
        ArchKind::Flex
    }

    fn seed(&mut self, root: Task) {
        self.host_queue.push_back(root);
    }

    fn push(&mut self, pe: usize, task: Task, at: Time) -> Result<(), Task> {
        self.deques[pe].push_tail(task, at)
    }

    fn pop_local(&mut self, pe: usize, now: Time) -> Option<Task> {
        self.deques[pe].pop_tail(now) // LIFO for locality, like the paper
    }

    fn acquire_target(&mut self, pe: usize) -> usize {
        // Sweep the ring of other PEs plus the host interface (index
        // `num_pes`), one victim per attempt.
        let victims = self.num_pes + 1;
        let mut offset = self.cursor[pe];
        if (pe + offset) % victims == pe {
            offset += 1;
        }
        self.cursor[pe] = offset % victims + 1;
        (pe + offset) % victims
    }

    fn serve_acquire(
        &mut self,
        victim: usize,
        now: Time,
        service: Time,
        pred: &dyn Fn(&Task) -> bool,
    ) -> (Option<Task>, Time) {
        let done = now + service;
        let task = if victim == self.num_pes {
            match self.host_queue.front() {
                Some(t) if pred(t) => self.host_queue.pop_front(),
                _ => None,
            }
        } else {
            // Steal from the head: the oldest task roots the largest
            // untraversed subtree (Section II-C).
            self.deques[victim].steal_head_if(done, pred)
        };
        (task, done)
    }

    fn unit_queue_empty(&self, pe: usize) -> bool {
        self.deques[pe].is_empty()
    }

    fn host_queue_empty(&self) -> bool {
        self.host_queue.is_empty()
    }

    fn queue_peaks(&self) -> (u64, u64) {
        let max = self.deques.iter().map(TaskDeque::peak).max().unwrap_or(0);
        let sum: usize = self.deques.iter().map(TaskDeque::peak).sum();
        (max as u64, sum as u64)
    }

    fn ready_tasks(&self) -> u64 {
        let queued: usize = self.deques.iter().map(TaskDeque::len).sum();
        (queued + self.host_queue.len()) as u64
    }

    // Checkpoint/restore hooks. A demo policy keeps them minimal: the
    // engine still snapshots everything it owns; this policy serializes its
    // ring cursors and queue contents the same way FlexPolicy does.
    fn state_to_json_value(&self) -> parallelxl::JsonValue {
        use parallelxl::JsonValue;
        JsonValue::Object(vec![
            (
                "deques".to_owned(),
                JsonValue::Array(
                    self.deques
                        .iter()
                        .map(TaskDeque::state_to_json_value)
                        .collect(),
                ),
            ),
            (
                "cursor".to_owned(),
                JsonValue::Array(
                    self.cursor
                        .iter()
                        .map(|c| JsonValue::num_u64(*c as u64))
                        .collect(),
                ),
            ),
            (
                "host_queue".to_owned(),
                JsonValue::Array(
                    self.host_queue
                        .iter()
                        .map(|t| {
                            JsonValue::Array(
                                t.to_words()
                                    .iter()
                                    .map(|w| JsonValue::num_u64(*w))
                                    .collect(),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn restore_state(&mut self, value: &parallelxl::JsonValue) -> Result<(), String> {
        use parallelxl::JsonValue;
        let deques = value
            .get("deques")
            .and_then(JsonValue::as_array)
            .ok_or("ring state: missing deques")?;
        if deques.len() != self.num_pes {
            return Err("ring state: deque count mismatch".to_owned());
        }
        for (deque, state) in self.deques.iter_mut().zip(deques) {
            deque.restore_state(state)?;
        }
        self.cursor = value
            .get("cursor")
            .and_then(JsonValue::as_array)
            .map(|a| {
                a.iter()
                    .filter_map(|v| v.as_u64())
                    .map(|v| v as usize)
                    .collect()
            })
            .ok_or("ring state: missing cursor")?;
        self.host_queue = value
            .get("host_queue")
            .and_then(JsonValue::as_array)
            .ok_or("ring state: missing host_queue")?
            .iter()
            .map(|entry| {
                let words: Vec<u64> = entry
                    .as_array()
                    .map(|a| a.iter().filter_map(|v| v.as_u64()).collect())
                    .ok_or("ring state: bad host task")?;
                Task::from_words(&words)
            })
            .collect::<Result<_, _>>()?;
        Ok(())
    }
}

const FIB: TaskTypeId = TaskTypeId(0);
const SUM: TaskTypeId = TaskTypeId(1);

struct FibWorker;

impl Worker for FibWorker {
    fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
        let k = task.k;
        if task.ty == FIB {
            let n = task.args[0];
            ctx.compute(2);
            if n < 2 {
                ctx.send_arg(k, n);
            } else {
                let kk = ctx.make_successor(SUM, k, 2);
                ctx.spawn(Task::new(FIB, kk.with_slot(1), &[n - 2]));
                ctx.spawn(Task::new(FIB, kk.with_slot(0), &[n - 1]));
            }
        } else {
            ctx.compute(1);
            ctx.send_arg(k, task.args[0] + task.args[1]);
        }
    }
}

fn main() {
    let n = 18;
    let root = || Task::new(FIB, Continuation::host(0), &[n]);
    let cfg = || AccelConfig::flex(2, 4);

    // The custom policy instantiates the same fabric the stock engines use.
    let mut ring = FabricEngine::<RingPolicy>::try_new(cfg(), ExecProfile::scalar())
        .expect("valid flex config");
    let out = ring.run(&mut FibWorker, root()).expect("ring-sweep run");

    // Same workload on stock FlexArch for comparison.
    let mut flex = FlexEngine::try_new(cfg(), ExecProfile::scalar()).expect("valid flex config");
    let reference = flex.run(&mut FibWorker, root()).expect("flex run");

    assert_eq!(out.result, reference.result, "policies agree on the value");
    println!("fib({n}) = {} on both policies\n", out.result);
    for (label, r) in [("ring-sweep", &out), ("flex (LFSR)", &reference)] {
        println!(
            "{label:11}: {:>12}  {} tasks, {}/{} steals hit, queue peak sum {}",
            r.elapsed.to_string(),
            r.metrics.get("accel.tasks"),
            r.metrics.get("accel.steal_hits"),
            r.metrics.get("accel.steal_attempts"),
            r.metrics.get("accel.queue_peak_sum"),
        );
    }
}
