//! Unbalanced Tree Search: the paper's load-balancing stress test.
//!
//! UTS builds a tree whose subtree sizes vary wildly, so static work
//! division fails and throughput depends on the scheduler. This example
//! contrasts the hardware work stealing of FlexArch with LiteArch's static
//! round-based distribution and the software runtime's hundreds-of-
//! instructions steals, and prints the per-PE load balance.
//!
//! Run with: `cargo run --release --example unbalanced_search`

use parallelxl::apps::{by_name, Scale};
use pxl_bench::{run_cpu, run_flex, run_lite};

fn main() {
    let bench = by_name("uts", Scale::Small).expect("uts registered");
    println!("Unbalanced Tree Search (counting a hash-shaped binomial tree)\n");

    let cpu8 = run_cpu(bench.as_ref(), 8);
    let flex = run_flex(bench.as_ref(), 8, None);
    let lite = run_lite(bench.as_ref(), 8, None).expect("uts has a Lite variant");

    println!(
        "CPU 8 cores (software stealing): {:>12}",
        cpu8.whole.to_string()
    );
    println!(
        "FlexArch 8 PEs (hardware stealing): {:>9}  ({:.2}x vs software)",
        flex.whole.to_string(),
        cpu8.seconds() / flex.seconds()
    );
    println!(
        "LiteArch 8 PEs (static rounds): {:>13}  ({:.2}x vs software, {} rounds)\n",
        lite.whole.to_string(),
        cpu8.seconds() / lite.seconds(),
        lite.metrics.get("lite.rounds"),
    );

    println!(
        "FlexArch steal traffic: {} attempts, {} successful",
        flex.metrics.get("accel.steal_attempts"),
        flex.metrics.get("accel.steal_hits"),
    );
    println!("Per-PE tasks executed (hardware stealing balances the skewed tree):");
    for pe in 0..8 {
        let tasks = flex.metrics.get(&format!("pe{pe}.tasks"));
        let busy_us = flex.metrics.get(&format!("pe{pe}.busy_ps")) as f64 / 1e6;
        println!("  PE {pe}: {tasks:>6} tasks, busy {busy_us:>8.1} us");
    }
}
