#!/usr/bin/env bash
# Full local verification: formatting, lints, offline release build, tests.
# This is exactly what CI runs; a clean pass here means a green pipeline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release --offline"
cargo build --release --workspace --offline

echo "==> cargo test --offline"
cargo test -q --workspace --offline

echo "==> OK"
