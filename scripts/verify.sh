#!/usr/bin/env bash
# Full local verification: formatting, lints, offline release build, tests.
# This is exactly what CI runs; a clean pass here means a green pipeline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release --offline"
cargo build --release --workspace --offline

echo "==> cargo test --offline"
cargo test -q --workspace --offline

echo "==> fault smoke sweep (pxl-bench --bin faults -- --smoke)"
# Exits nonzero on any unrecovered fault, recovery-accounting imbalance,
# golden mismatch, or nondeterministic fault replay.
cargo run --release --offline -p pxl-bench --bin faults -- --smoke > /dev/null

echo "==> perf smoke (pxl-bench --bin perf -- --smoke)"
# Host-throughput trajectory: simulated-cycles/sec and tasks/sec for every
# engine (flex, lite, central, cpu); appends records to bench_results.jsonl.
cargo run --release --offline -p pxl-bench --bin perf -- --smoke > /dev/null

echo "==> profile smoke incl. telemetry (pxl-bench --bin profile -- --smoke)"
# Traced run + full pxl-profile analysis per (benchmark, engine); exits
# nonzero if any profile violates the structural invariants (span <=
# makespan, trace work == accel.task_ps, utilization in [0,1]) or is not
# byte-identical across two same-seed runs. Writes profile_report.md,
# profile_results.jsonl and profile_traces/. Ends with the telemetry
# smoke: a run sampled every 500 cycles must produce a non-empty
# telemetry_timeline.jsonl that a second same-seed run reproduces
# byte-identically, plus a Perfetto export with telemetry.* counter
# tracks.
cargo run --release --offline -p pxl-bench --bin profile -- --smoke > /dev/null

echo "==> DSE smoke sweep incl. clusters (pxl-bench --bin dse -- --smoke)"
# Explores the smoke design space three times against a shared result
# cache; exits nonzero if the cached re-run is not 100% hits with
# byte-identical Pareto fronts, or if successive halving's best-runtime
# point diverges from the exhaustive grid's. A fourth pass sweeps the
# multi-chip cluster space (chips x link latency x stealing mode) into
# cluster_pareto.jsonl and fails if hierarchical stealing never beats
# flat at a matched geometry.
cargo run --release --offline -p pxl-bench --bin dse -- --smoke > /dev/null

echo "==> serve smoke (pxl-bench --bin serve)"
# Boots the pxl-serve job server on a loopback port and asserts the full
# service contract: deterministic fair-share ordering under a flooding
# tenant, byte-identical dedup with the second submission a pure cache
# hit, quota refusal without collateral damage, profile-job trace
# reporting, live introspection (progress beats at checkpoint
# boundaries and a byte-stable stats reply), graceful drain with exact
# totals, and a well-formed serve_jobs.jsonl event log. Ends with the crash-recovery phase: a
# child server with six checkpointed jobs in flight is SIGKILLed after
# its first durable checkpoint, restarted on the same write-ahead
# journal, and must complete every job exactly once from its latest
# checkpoint (recovered journal kept under serve_crash/).
cargo run --release --offline -p pxl-bench --bin serve > /dev/null

echo "==> OK"
