//! # ParallelXL
//!
//! A Rust reproduction of **"An Architectural Framework for Accelerating
//! Dynamic Parallel Algorithms on Reconfigurable Hardware"** (MICRO 2018):
//! an accelerator framework built on a task-based computation model with
//! *explicit continuation passing*, hardware work stealing, and a
//! design-methodology layer that elaborates accelerators from high-level
//! worker descriptions.
//!
//! The original system targets FPGAs through HLS + a PyMTL RTL template;
//! this reproduction implements every layer as a cycle-level simulator so
//! the paper's full evaluation (Tables I-V, Figures 6-9) can be regenerated
//! on a laptop. See `DESIGN.md` for the substitution map and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Crate map
//!
//! | Module | Crate | Role |
//! |--------|-------|------|
//! | [`sim`] | `pxl-sim` | discrete-event kernel: time, clocks, RNG/LFSR, metrics, tracing |
//! | [`mem`] | `pxl-mem` | functional memory + MOESI-coherent cache/DRAM timing |
//! | [`model`] | `pxl-model` | tasks, continuations, workers, parallel patterns |
//! | [`arch`] | `pxl-arch` | FlexArch/LiteArch accelerator engines + [`Engine`] trait |
//! | [`cpu`] | `pxl-cpu` | Cilk-style software-runtime CPU baseline |
//! | [`apps`] | `pxl-apps` | the ten Table II benchmarks (see [`benchmarks`]) |
//! | [`cost`] | `pxl-cost` | FPGA resource + energy models |
//! | [`flow`] | `pxl-flow` | design methodology: builders + design-space sweeps |
//! | [`dse`] | `pxl-dse` | parallel design-space exploration: result cache, strategies, Pareto fronts |
//! | [`profile`] | `pxl-profile` | trace-driven profiling: task DAG + critical path, latency, bottlenecks, Perfetto export |
//! | [`serve`] | `pxl-serve` | simulation-as-a-service: TCP job server over the [`RunSpec`] API with fair-share tenancy and result dedup |
//!
//! The most commonly used types from each layer are re-exported at the
//! crate root, so a typical program needs only `use parallelxl::...`.
//!
//! ## Quick start
//!
//! Express an algorithm as a [`Worker`] (the analogue of the paper's C++
//! worker description), build an engine with [`SimulationBuilder`], and run
//! it through the unified [`Engine`] trait:
//!
//! ```
//! use parallelxl::{
//!     AccelConfig, Continuation, ExecProfile, SimulationBuilder, Task, TaskContext,
//!     TaskTypeId, Worker, Workload,
//! };
//!
//! const FIB: TaskTypeId = TaskTypeId(0);
//! const SUM: TaskTypeId = TaskTypeId(1);
//!
//! struct FibWorker;
//! impl Worker for FibWorker {
//!     fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
//!         let k = task.k;
//!         if task.ty == FIB {
//!             let n = task.args[0];
//!             ctx.compute(2);
//!             if n < 2 {
//!                 ctx.send_arg(k, n);
//!             } else {
//!                 // Fork-join via an explicit successor (the paper's Fig. 1b).
//!                 let kk = ctx.make_successor(SUM, k, 2);
//!                 ctx.spawn(Task::new(FIB, kk.with_slot(1), &[n - 2]));
//!                 ctx.spawn(Task::new(FIB, kk.with_slot(0), &[n - 1]));
//!             }
//!         } else {
//!             ctx.send_arg(k, task.args[0] + task.args[1]);
//!         }
//!     }
//! }
//!
//! let mut engine = SimulationBuilder::from_config(AccelConfig::flex(2, 4), ExecProfile::scalar())
//!     .build()
//!     .unwrap();
//! let root = Task::new(FIB, Continuation::host(0), &[15]);
//! let out = engine.run(Workload::dynamic(&mut FibWorker, root)).unwrap();
//! assert_eq!(out.result, 610);
//! println!(
//!     "fib(15) in {} with {} steals",
//!     out.elapsed,
//!     out.metrics.get("accel.steal_hits")
//! );
//! ```

/// The ten Table II benchmark algorithms.
pub use pxl_apps as apps;
/// The FlexArch / LiteArch accelerator engines (Section III).
pub use pxl_arch as arch;
/// FPGA resource and energy models (Table V, Fig. 8).
pub use pxl_cost as cost;
/// The Cilk-style multicore software baseline.
pub use pxl_cpu as cpu;
/// Parallel design-space exploration: search spaces, result cache, Pareto
/// fronts.
pub use pxl_dse as dse;
/// Design methodology: accelerator builder and design-space sweeps
/// (Section IV).
pub use pxl_flow as flow;
/// The coherent memory hierarchy and Zedboard memory path.
pub use pxl_mem as mem;
/// The computation model: tasks with explicit continuation passing
/// (Section II).
pub use pxl_model as model;
/// Post-run analysis: task-graph reconstruction, critical path, latency
/// percentiles, bottleneck attribution, Perfetto export.
pub use pxl_profile as profile;
/// Simulation-as-a-service: the job server, typed client, wire protocol
/// and fair-share scheduler over the serializable [`RunSpec`] API.
pub use pxl_serve as serve;
/// Simulation kernel: time, clocks, deterministic RNG, metrics, tracing.
pub use pxl_sim as sim;

// ---------------------------------------------------------------------------
// Flat re-exports: the working set for a typical program.
// ---------------------------------------------------------------------------

/// The unified engine API and the accelerator engines: the shared
/// execution fabric instantiated by a scheduling policy (FlexArch,
/// LiteArch, and the centralized-queue ablation).
pub use pxl_arch::{
    AccelConfig, AccelError, AccelResult, ArchKind, CentralEngine, CentralPolicy, ClusterConfig,
    Engine, EngineKind, FabricEngine, FlexEngine, FlexPolicy, HierEngine, HierPolicy, LinkTopology,
    LiteDriver, LiteEngine, MemBackendKind, PStoreError, SchedulingPolicy, StaticRoundPolicy,
    StealMode, Workload,
};
/// The software baseline engine and its runtime cost knobs.
pub use pxl_cpu::{CpuEngine, CpuResult, SoftwareCosts};
/// Design-space exploration: declare a space, explore it in parallel,
/// read the Pareto front.
pub use pxl_dse::{
    Axis, ClusterPoint, DesignPoint, Explorer, ParetoFront, PointArch, ResultCache, SearchSpace,
    Strategy,
};
/// Design-flow entry points and structured errors, and the canonical
/// serializable run API: a [`RunSpec`] names a run exactly (JSON
/// round-trip, canonical string), [`execute`]/[`measure`] perform it.
/// A [`SimSession`] is the pausable form: advance to a checkpoint
/// boundary, [`Snapshot`] the engine, resume in another process.
pub use pxl_flow::{
    execute, measure, AcceleratorBuilder, AcceleratorDesign, CheckpointPolicy, FlowError, RunError,
    RunOutcome, RunSpec, SessionStatus, SimSession, SimulationBuilder, SpecError,
};
/// Functional memory, shared by every engine.
pub use pxl_mem::Memory;
/// The computation model's working set.
pub use pxl_model::{
    Continuation, ExecProfile, SerialExecutor, Task, TaskContext, TaskTypeId, Worker,
};
/// Trace-driven performance analysis of a finished run.
pub use pxl_profile::Profile;
/// Simulation-as-a-service working set: start a [`Server`], connect a
/// [`Client`], submit [`RunSpec`]s as jobs, stream [`JobEvent`]s.
pub use pxl_serve::{Client, JobEvent, JobId, JobKind, JobStatus, Server, ServerConfig};
/// Deterministic JSON and versioned, checksummed snapshot envelopes for
/// checkpoint/restore.
pub use pxl_sim::json::JsonValue;
/// Deterministic fault injection: seeded plans armed via
/// [`SimulationBuilder::with_faults`] or [`AccelConfig::fault_plan`].
pub use pxl_sim::{FaultKind, FaultPlan, FaultSpec, NetClass};
/// Typed metrics, bounded event tracing, and simulated time.
pub use pxl_sim::{Histogram, MetricKind, Metrics, Time, TraceEvent, TraceRecord, Tracer};
pub use pxl_sim::{Snapshot, SnapshotError, SNAPSHOT_VERSION};

/// The ten Table II benchmarks, re-exported by name.
///
/// Each benchmark is constructed with `new(scale)` and implements
/// [`apps::Benchmark`]: it prepares inputs in functional [`Memory`],
/// provides the dynamic (FlexArch/CPU) and, where it exists, the static
/// LiteArch formulation, and checks outputs against a golden reference.
///
/// ```
/// use parallelxl::benchmarks::{Queens, Scale};
/// use parallelxl::apps::Benchmark;
///
/// let queens = Queens::new(Scale::Tiny);
/// assert_eq!(queens.meta().name, "queens");
/// ```
pub mod benchmarks {
    pub use pxl_apps::bbgemm::Bbgemm;
    pub use pxl_apps::bfsqueue::BfsQueue;
    pub use pxl_apps::cilksort::Cilksort;
    pub use pxl_apps::knapsack::Knapsack;
    pub use pxl_apps::nw::Nw;
    pub use pxl_apps::queens::Queens;
    pub use pxl_apps::quicksort::Quicksort;
    pub use pxl_apps::spmvcrs::SpmvCrs;
    pub use pxl_apps::stencil2d::Stencil2d;
    pub use pxl_apps::uts::Uts;
    pub use pxl_apps::{by_name, suite, Benchmark, Scale};
}
