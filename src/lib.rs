//! # ParallelXL
//!
//! A Rust reproduction of **"An Architectural Framework for Accelerating
//! Dynamic Parallel Algorithms on Reconfigurable Hardware"** (MICRO 2018):
//! an accelerator framework built on a task-based computation model with
//! *explicit continuation passing*, hardware work stealing, and a
//! design-methodology layer that elaborates accelerators from high-level
//! worker descriptions.
//!
//! The original system targets FPGAs through HLS + a PyMTL RTL template;
//! this reproduction implements every layer as a cycle-level simulator so
//! the paper's full evaluation (Tables I-V, Figures 6-9) can be regenerated
//! on a laptop. See `DESIGN.md` for the substitution map and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Crate map
//!
//! | Module | Crate | Role |
//! |--------|-------|------|
//! | [`sim`] | `pxl-sim` | discrete-event kernel: time, clocks, RNG/LFSR, stats |
//! | [`mem`] | `pxl-mem` | functional memory + MOESI-coherent cache/DRAM timing |
//! | [`model`] | `pxl-model` | tasks, continuations, workers, parallel patterns |
//! | [`arch`] | `pxl-arch` | FlexArch/LiteArch accelerator engines |
//! | [`cpu`] | `pxl-cpu` | Cilk-style software-runtime CPU baseline |
//! | [`apps`] | `pxl-apps` | the ten Table II benchmarks |
//! | [`cost`] | `pxl-cost` | FPGA resource + energy models |
//! | [`flow`] | `pxl-flow` | design methodology: builder + design-space sweeps |
//!
//! ## Quick start
//!
//! Express an algorithm as a [`model::Worker`] (the analogue of the paper's
//! C++ worker description) and run it on a simulated FlexArch accelerator:
//!
//! ```
//! use parallelxl::arch::{AccelConfig, FlexEngine};
//! use parallelxl::model::{Continuation, ExecProfile, Task, TaskContext, TaskTypeId, Worker};
//!
//! const FIB: TaskTypeId = TaskTypeId(0);
//! const SUM: TaskTypeId = TaskTypeId(1);
//!
//! struct FibWorker;
//! impl Worker for FibWorker {
//!     fn execute(&mut self, task: &Task, ctx: &mut dyn TaskContext) {
//!         let k = task.k;
//!         if task.ty == FIB {
//!             let n = task.args[0];
//!             ctx.compute(2);
//!             if n < 2 {
//!                 ctx.send_arg(k, n);
//!             } else {
//!                 // Fork-join via an explicit successor (the paper's Fig. 1b).
//!                 let kk = ctx.make_successor(SUM, k, 2);
//!                 ctx.spawn(Task::new(FIB, kk.with_slot(1), &[n - 2]));
//!                 ctx.spawn(Task::new(FIB, kk.with_slot(0), &[n - 1]));
//!             }
//!         } else {
//!             ctx.send_arg(k, task.args[0] + task.args[1]);
//!         }
//!     }
//! }
//!
//! let mut engine = FlexEngine::new(AccelConfig::flex(2, 4), ExecProfile::scalar());
//! let out = engine
//!     .run(&mut FibWorker, Task::new(FIB, Continuation::host(0), &[15]))
//!     .unwrap();
//! assert_eq!(out.result, 610);
//! println!("fib(15) in {} with {} steals", out.elapsed, out.stats.get("accel.steal_hits"));
//! ```

/// The ten Table II benchmark algorithms.
pub use pxl_apps as apps;
/// The FlexArch / LiteArch accelerator engines (Section III).
pub use pxl_arch as arch;
/// FPGA resource and energy models (Table V, Fig. 8).
pub use pxl_cost as cost;
/// The Cilk-style multicore software baseline.
pub use pxl_cpu as cpu;
/// The coherent memory hierarchy and Zedboard memory path.
pub use pxl_mem as mem;
/// The computation model: tasks with explicit continuation passing
/// (Section II).
pub use pxl_model as model;
/// Simulation kernel: time, clocks, deterministic RNG, statistics.
pub use pxl_sim as sim;
/// Design methodology: accelerator builder and design-space sweeps
/// (Section IV).
pub use pxl_flow as flow;
